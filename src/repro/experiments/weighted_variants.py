"""Algorithm 2 probability rules vs the [6] per-task condition.

Section 4's key design decision: a task's migration decision ignores its
own weight (condition ``l_i - l_j > 1/s_j``), so per edge either all
tasks want to move or none — the property the analysis leans on. The
baseline keeps [6]'s per-task condition ``l_i - l_j > w_l/s_j``.

The experiment compares three protocols on a heavy/light task mix:

* Algorithm 2, flow rule (Definition 4.1 — the analysis form);
* Algorithm 2, literal pseudo-code rule (differs for non-uniform speeds);
* the per-task-threshold baseline ([6]-style).

Measured: rounds to the threshold state (``l_i - l_j <= 1/s_j`` on all
edges, Algorithm 2's convergence target) over independent repetitions —
routed through :func:`repro.analysis.convergence.measure_convergence_rounds`
with ``engine="auto|batch|scalar"`` exactly like the uniform experiments,
so the repetitions advance as one padded
:class:`~repro.model.batch.BatchWeightedState` replica stack — and the
residual churn afterwards (measured on one scalar probe run). The
per-task baseline's lighter tasks keep migrating after the threshold
state is reached (their own condition is stricter), which is exactly the
behaviour the paper's modification removes.
"""

from __future__ import annotations

from repro.analysis.convergence import measure_convergence_rounds
from repro.core.equilibrium import is_nash
from repro.core.protocols import (
    PerTaskThresholdProtocol,
    SelfishWeightedProtocol,
)
from repro.core.simulator import Simulator
from repro.core.stopping import NashStop
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.graphs.families import get_family
from repro.model.placement import place_weighted_all_on_one
from repro.model.speeds import two_class_speeds
from repro.model.state import WeightedState
from repro.model.tasks import two_class_weights
from repro.utils.rng import derive_seed, spawn_rngs
from repro.utils.tables import Table, format_float

__all__ = ["run_weighted_variants"]


@register_experiment("weighted-variants")
def run_weighted_variants(
    quick: bool = True, seed: int = 20120716, engine: str = "auto"
) -> ExperimentResult:
    """Run the weighted-protocol ablation.

    ``engine`` selects the measurement engine for the rounds-to-threshold
    statistic (``"auto"`` batches the repetitions; ``"scalar"`` forces
    the sequential reference — identical results either way, the
    weighted kernels are pathwise equivalent).
    """
    family = get_family("ring")
    graph = family.make(8 if quick else 16)
    n = graph.num_vertices
    speeds = two_class_speeds(n, fast_fraction=0.25, fast_speed=2.0)
    m = 1500 if quick else 6000
    weights = two_class_weights(m, heavy_fraction=0.1, heavy=1.0, light=0.1)
    budget = 30_000 if quick else 200_000
    repetitions = 3 if quick else 5
    churn_window = 200

    def state_factory(rng):
        locations = place_weighted_all_on_one(m, 0)
        return WeightedState(locations, weights, speeds)

    protocols = [
        ("Alg. 2 / flow rule", SelfishWeightedProtocol(rule="flow")),
        ("Alg. 2 / pseudo-code rule", SelfishWeightedProtocol(rule="pseudocode")),
        ("[6]-style per-task", PerTaskThresholdProtocol()),
    ]
    table = Table(
        headers=[
            "protocol",
            "median rounds to threshold state",
            "churn/round after",
            "still threshold-NE after churn",
        ],
        title=(
            f"Weighted variants on ring(n={n}), two-class speeds, "
            f"m={m} heavy/light tasks, {repetitions} repetitions"
        ),
    )
    rows = {}
    converged_all = True
    engine_used = None
    for name, protocol in protocols:
        measure_seed = derive_seed(seed, "weighted-variants", name)
        measurement = measure_convergence_rounds(
            graph=graph,
            protocol=protocol,
            state_factory=state_factory,
            stopping=NashStop(),
            repetitions=repetitions,
            max_rounds=budget,
            seed=measure_seed,
            engine=engine,
        )
        engine_used = measurement.engine
        rounds = (
            measurement.median_rounds
            if measurement.all_converged
            else float("nan")
        )
        converged_all = converged_all and measurement.all_converged

        # Post-convergence churn, probed on one scalar run that *replays
        # repetition 0 of the measurement* (same spawned child stream,
        # and the weighted kernels are pathwise identical across
        # engines), so whenever the measurement converged the probe is
        # guaranteed to reach the same threshold state; then keep
        # running and count migrations. A non-converged probe would make
        # the churn columns meaningless, so it folds into the verdict.
        rng = spawn_rngs(measure_seed, repetitions)[0]
        state = state_factory(rng)
        simulator = Simulator(graph, protocol, rng)
        probe = simulator.run(state, stopping=NashStop(), max_rounds=budget)
        converged_all = converged_all and probe.converged
        moved = 0
        for _ in range(churn_window):
            moved += protocol.execute_round(state, graph, rng).tasks_moved
        churn = moved / churn_window
        still_nash = is_nash(state, graph)
        table.add_row(
            [
                name,
                rounds,
                format_float(churn, 3),
                still_nash,
            ]
        )
        rows[name] = {
            "rounds": rounds,
            "churn_per_round": churn,
            "still_threshold_nash": still_nash,
        }

    # Expected shape: both Algorithm 2 rules converge and then stay quiet
    # (zero churn: no edge satisfies the weight-oblivious condition). The
    # per-task baseline may keep moving light tasks.
    alg2_quiet = (
        rows["Alg. 2 / flow rule"]["churn_per_round"] == 0.0
        and rows["Alg. 2 / pseudo-code rule"]["churn_per_round"] == 0.0
    )
    result = ExperimentResult(
        experiment_id="weighted-variants",
        title="Section 4 ablation: migration condition and probability rule",
        tables=[table],
        passed=converged_all and alg2_quiet,
        data={"rows": rows, "engine": engine_used},
    )
    result.notes.append(
        f"Rounds-to-threshold measured over {repetitions} repetitions via "
        f"the {engine_used!r} engine."
    )
    result.notes.append(
        "Both Algorithm 2 rules reach the threshold state and stop moving "
        "entirely (all-or-none incentive per edge)."
        if alg2_quiet
        else "WARNING: Algorithm 2 kept migrating after the threshold state."
    )
    per_task_churn = rows["[6]-style per-task"]["churn_per_round"]
    result.notes.append(
        f"The per-task baseline continues migrating light tasks after the "
        f"threshold state ({per_task_churn:.2f} moves/round) — the churn "
        f"the paper's weight-oblivious condition eliminates."
        if per_task_churn > 0
        else "The per-task baseline also became quiet (it reached the "
        "stronger per-task NE)."
    )
    return result
