"""Algorithm 2 probability rules vs the [6] per-task condition.

Section 4's key design decision: a task's migration decision ignores its
own weight (condition ``l_i - l_j > 1/s_j``), so per edge either all
tasks want to move or none — the property the analysis leans on. The
baseline keeps [6]'s per-task condition ``l_i - l_j > w_l/s_j``.

The experiment compares three protocols on a heavy/light task mix:

* Algorithm 2, flow rule (Definition 4.1 — the analysis form);
* Algorithm 2, literal pseudo-code rule (differs for non-uniform speeds);
* the per-task-threshold baseline ([6]-style).

Measured: rounds to the threshold state (``l_i - l_j <= 1/s_j`` on all
edges, Algorithm 2's convergence target) over independent repetitions,
plus the residual churn afterwards (a scalar probe replaying repetition
0). Each variant is one executor
:class:`~repro.experiments.executor.CellSpec` (kind
``"weighted-variant"``, implemented by
:func:`repro.experiments._common.measure_variant_threshold_time`), so
the three cells — measurement and churn probe alike — fan out over
processes under ``--workers`` while each cell still batches its
repetitions as one padded
:class:`~repro.model.batch.BatchWeightedState` replica stack. The
per-task baseline's lighter tasks keep migrating after the threshold
state is reached (their own condition is stricter), which is exactly the
behaviour the paper's modification removes.
"""

from __future__ import annotations

from repro.experiments._common import WEIGHTED_VARIANT_LABELS
from repro.experiments.executor import CellSpec, execute_cells_report
from repro.experiments.registry import ExperimentResult, register_experiment
from repro.utils.tables import Table, format_float

__all__ = ["run_weighted_variants"]

#: Variant order of the ablation (also the report's row order).
_VARIANTS = ("flow", "pseudocode", "per-task")


@register_experiment("weighted-variants")
def run_weighted_variants(
    quick: bool = True,
    seed: int = 20120716,
    engine: str = "auto",
    workers: int | None = None,
    rng_policy: str = "spawned",
    shard_size: int | None = None,
    backend: str = "numpy",
) -> ExperimentResult:
    """Run the weighted-protocol ablation.

    ``engine`` selects the measurement engine for the rounds-to-threshold
    statistic (``"auto"`` batches the repetitions; ``"scalar"`` forces
    the sequential reference — identical results either way, the
    weighted kernels are pathwise equivalent). ``workers`` fans the
    per-variant measurement cells over processes, ``shard_size``
    additionally splits each variant's ensemble into replica-window
    sub-tasks (both rng policies — the variant kind's draw site is
    replica-addressed); each cell derives its seed from the variant
    label, so results are identical at any (workers, shard_size).
    """
    family_name = "ring"
    target_n = 8 if quick else 16
    m = 1500 if quick else 6000
    budget = 30_000 if quick else 200_000
    repetitions = 3 if quick else 5

    specs = [
        CellSpec(
            kind="weighted-variant",
            family=family_name,
            n=target_n,
            m_factor=m / target_n,
            repetitions=repetitions,
            seed=seed,
            params=(
                ("engine", engine),
                ("m", m),
                ("max_rounds", budget),
                ("variant", variant),
            ),
            rng_policy=rng_policy,
            shard_size=shard_size,
            backend=backend,
        )
        for variant in _VARIANTS
    ]
    report = execute_cells_report(specs, workers=workers)
    measurements = list(report.results)

    table = Table(
        headers=[
            "protocol",
            "median rounds to threshold state",
            "churn/round after",
            "still threshold-NE after churn",
        ],
        title=(
            f"Weighted variants on ring(n={target_n}), two-class speeds, "
            f"m={m} heavy/light tasks, {repetitions} repetitions"
        ),
    )
    rows = {}
    converged_all = True
    engine_used = None
    for measurement in measurements:
        engine_used = measurement.engine
        converged_all = converged_all and (
            measurement.num_converged == measurement.num_repetitions
            and measurement.probe_converged
        )
        table.add_row(
            [
                measurement.label,
                measurement.median_rounds,
                format_float(measurement.churn_per_round, 3),
                measurement.still_threshold_nash,
            ]
        )
        rows[measurement.label] = {
            "rounds": measurement.median_rounds,
            "churn_per_round": measurement.churn_per_round,
            "still_threshold_nash": measurement.still_threshold_nash,
        }

    # Expected shape: both Algorithm 2 rules converge and then stay quiet
    # (zero churn: no edge satisfies the weight-oblivious condition). The
    # per-task baseline may keep moving light tasks.
    alg2_quiet = (
        rows[WEIGHTED_VARIANT_LABELS["flow"]]["churn_per_round"] == 0.0
        and rows[WEIGHTED_VARIANT_LABELS["pseudocode"]]["churn_per_round"] == 0.0
    )
    result = ExperimentResult(
        experiment_id="weighted-variants",
        title="Section 4 ablation: migration condition and probability rule",
        tables=[table],
        passed=converged_all and alg2_quiet,
        data={
            "rows": rows,
            "engine": engine_used,
            "cell_timings": report.timings_json(),
        },
    )
    result.notes.append(
        f"Rounds-to-threshold measured over {repetitions} repetitions via "
        f"the {engine_used!r} engine."
    )
    result.notes.append(
        "Both Algorithm 2 rules reach the threshold state and stop moving "
        "entirely (all-or-none incentive per edge)."
        if alg2_quiet
        else "WARNING: Algorithm 2 kept migrating after the threshold state."
    )
    per_task_churn = rows[WEIGHTED_VARIANT_LABELS["per-task"]]["churn_per_round"]
    result.notes.append(
        f"The per-task baseline continues migrating light tasks after the "
        f"threshold state ({per_task_churn:.2f} moves/round) — the churn "
        f"the paper's weight-oblivious condition eliminates."
        if per_task_churn > 0
        else "The per-task baseline also became quiet (it reached the "
        "stronger per-task NE)."
    )
    return result
