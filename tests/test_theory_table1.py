"""Tests for repro.theory.table1."""

from __future__ import annotations

from repro.theory.table1 import TABLE1_ROWS, table1_render


class TestTable1Rows:
    def test_all_families_present(self):
        families = {row.family for row in TABLE1_ROWS}
        assert families == {"complete", "ring", "path", "mesh", "torus", "hypercube"}

    def test_this_paper_exponents_below_prior(self):
        """Table 1's whole point: our columns beat [6]'s."""
        for row in TABLE1_ROWS:
            assert row.approx_this_exponent <= row.approx_prior_exponent
            assert row.exact_this_exponent <= row.exact_prior_exponent

    def test_exact_exponents_at_least_approx(self):
        """Reaching the exact NE is never easier than the approximate one."""
        for row in TABLE1_ROWS:
            assert row.exact_this_exponent >= row.approx_this_exponent

    def test_ring_and_path_identical(self):
        ring = next(r for r in TABLE1_ROWS if r.family == "ring")
        path = next(r for r in TABLE1_ROWS if r.family == "path")
        assert ring.approx_this == path.approx_this
        assert ring.exact_prior == path.exact_prior

    def test_paper_strings_as_printed(self):
        complete = next(r for r in TABLE1_ROWS if r.family == "complete")
        assert complete.approx_this == "ln(m/n)"
        assert complete.exact_prior == "n^6"
        cube = next(r for r in TABLE1_ROWS if r.family == "hypercube")
        assert cube.exact_this == "n ln^2(n)"


class TestRender:
    def test_render_contains_all_rows(self):
        text = table1_render()
        for row in TABLE1_ROWS:
            assert row.family in text
        assert "Table 1" in text
        assert "[6]" in text
