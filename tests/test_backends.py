"""Conformance suite for the pluggable array-backend seam.

Four layers of contract, each over every *installed* backend (missing
optional dependencies skip via the ``requires_numba`` /
``requires_cupy`` markers, they never fail):

* **seam shape** — every backend exposes the :class:`ArrayBackend`
  surface (name, availability probe, ``xp`` module, transfer pair,
  kernel registry, Philox fill hook) with the documented semantics;
* **numpy bit-identity** — the numpy backend (and ``backend=None``)
  reproduces the pre-backend measurement pipeline bit for bit, pinned
  against golden values captured before the seam existed;
* **sparse-row regression** — ``CounterStreams.site_uniforms`` with
  retired (non-contiguous) rows returns exactly what the old full-span
  gather returned, while the run-splitting fill never draws for the
  gaps;
* **accelerated-backend laws** — numba/cupy kernels are same-seed
  deterministic, conserve the per-replica exact totals, and agree with
  the numpy reference in law (KS over first-hitting rounds).

Plus the degradation contract end to end: requesting an uninstalled
backend warns (``RuntimeWarning``) and falls back to numpy everywhere —
``resolve_backend``, ``run_experiment`` (``run_meta`` records requested
vs effective), and the CLI (exit 0).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.backends import (
    BACKEND_NAMES,
    ArrayBackend,
    CupyBackend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    check_backend,
    resolve_backend,
)
from repro.errors import ValidationError
from repro.experiments._common import (
    measure_psi_threshold_time,
    measure_variant_threshold_time,
    measure_weighted_threshold_time,
)
from repro.utils.rng import CounterStreams

from equivalence import assert_batch_conserves, assert_ks_agreement

_BACKEND_CLASSES = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "cupy": CupyBackend,
}

#: Marker per accelerated backend (conftest skips when not importable).
_BACKEND_MARKS = {
    "numba": pytest.mark.requires_numba,
    "cupy": pytest.mark.requires_cupy,
}

KERNEL_NAMES = ("weighted_migrate", "uniform_pvals")


def _installed_params():
    """One param per backend, accelerated ones behind their skip marker."""
    return [
        pytest.param(name, marks=_BACKEND_MARKS.get(name, ()))
        for name in BACKEND_NAMES
    ]


class _BackendProtocol:
    """Wrap a protocol so equivalence helpers hit the fused kernels.

    ``assert_batch_conserves`` drives ``execute_round_batch(batch,
    graph, rngs, active)`` without a backend argument; this shim binds
    one so the conservation contract exercises the backend's fused
    path.
    """

    def __init__(self, protocol, backend: ArrayBackend):
        self._protocol = protocol
        self._backend = backend

    def __getattr__(self, name):
        return getattr(self._protocol, name)

    def execute_round_batch(self, batch, graph, rngs, active):
        return self._protocol.execute_round_batch(
            batch, graph, rngs, active, backend=self._backend
        )


class TestSeamShape:
    def test_backend_names_cover_registry(self):
        assert BACKEND_NAMES == ("numpy", "numba", "cupy")
        for name in BACKEND_NAMES:
            assert _BACKEND_CLASSES[name].name == name

    def test_availability_probe_never_raises(self):
        for cls in _BACKEND_CLASSES.values():
            assert cls.is_available() in (True, False)

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert available_backends()[0] == "numpy"

    def test_check_backend_rejects_unknown(self):
        assert check_backend("numba") == "numba"
        with pytest.raises(ValidationError, match="backend must be one of"):
            check_backend("jax")

    @pytest.mark.parametrize("name", _installed_params())
    def test_xp_module_and_transfer_round_trip(self, name):
        backend = resolve_backend(name, warn=False)
        assert backend.name == name
        host = np.arange(12, dtype=np.float64).reshape(3, 4)
        device = backend.asarray(host)
        # The xp handle speaks the numpy API over the backend's arrays.
        total = backend.xp.sum(device)
        assert float(backend.to_numpy(total)) == float(host.sum())
        round_tripped = backend.to_numpy(device)
        assert isinstance(round_tripped, np.ndarray)
        np.testing.assert_array_equal(round_tripped, host)
        assert round_tripped.dtype == host.dtype

    @pytest.mark.parametrize("name", _installed_params())
    def test_kernel_registry_callable_or_none(self, name):
        backend = resolve_backend(name, warn=False)
        for kernel_name in KERNEL_NAMES:
            kernel = backend.kernel(kernel_name)
            assert kernel is None or callable(kernel)
        assert backend.kernel("no-such-kernel") is None

    def test_numpy_backend_registers_no_kernels(self):
        # The numpy backend is the identity: dispatch must keep the
        # plain-numpy path (that is what makes bit-identity trivial).
        backend = resolve_backend("numpy")
        for kernel_name in KERNEL_NAMES:
            assert backend.kernel(kernel_name) is None

    @pytest.mark.parametrize("name", _installed_params())
    def test_philox_fill_shape_and_determinism(self, name):
        backend = resolve_backend(name, warn=False)
        key = np.uint64(0xDEADBEEF)
        first = backend.philox_uniforms(key, 12, 37)
        again = backend.philox_uniforms(key, 12, 37)
        assert first.shape == (37,)
        assert np.all((first >= 0.0) & (first < 1.0))
        np.testing.assert_array_equal(first, again)
        # A different start word is a different stream position.
        assert not np.array_equal(first, backend.philox_uniforms(key, 13, 37))

    def test_numpy_philox_fill_matches_reference(self):
        # The numpy backend inherits the reference hook, which must be
        # the exact block-advance + word-discard fill CounterStreams
        # has always used.
        key = np.uint64(424242)
        bit_generator = np.random.Philox(key=key)
        bit_generator.advance(5)  # 22 words = 5 blocks + 2 discards
        generator = np.random.Generator(bit_generator)
        generator.random(2)
        expected = generator.random(10)
        np.testing.assert_array_equal(
            resolve_backend("numpy").philox_uniforms(key, 22, 10), expected
        )


class TestResolveBackend:
    def test_none_and_default_resolve_to_numpy(self):
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend().name == "numpy"

    def test_instance_passes_through(self):
        instance = NumpyBackend()
        assert resolve_backend(instance) is instance

    def test_singleton_per_name(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="backend must be one of"):
            resolve_backend("jax")

    def test_missing_dependency_warns_and_falls_back(self):
        missing = [
            name for name in ("numba", "cupy") if name not in available_backends()
        ]
        if not missing:
            pytest.skip("all optional backends installed; nothing to fall back")
        for name in missing:
            with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
                backend = resolve_backend(name)
            assert backend.name == "numpy"
            # warn=False keeps the fallback silent (registry pre-resolution).
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert resolve_backend(name, warn=False).name == "numpy"


class TestNumpyBitIdentity:
    """The numpy backend reproduces pre-seam measurements bit for bit.

    The golden tuples were captured from the measurement pipeline
    *before* the backend seam existed (same seeds, same counter
    layout); ``backend="numpy"`` and the no-backend default must both
    still produce them exactly.
    """

    WEIGHTED_GOLDEN = (37.0, 58.0, 37.0, 38.0, 30.0, 52.0)
    UNIFORM_GOLDEN = (15.0, 15.0, 13.0, 12.0)
    PERTASK_GOLDEN = (41.0, 70.0, 46.0, 89.0)

    @pytest.mark.parametrize("backend", [None, "numpy"])
    def test_weighted_counter_measurement(self, backend):
        kwargs = {} if backend is None else {"backend": backend}
        measurement = measure_weighted_threshold_time(
            "ring", 8, 8.0, repetitions=6, seed=123, rng_policy="counter", **kwargs
        )
        assert tuple(measurement.repetition_rounds) == self.WEIGHTED_GOLDEN

    @pytest.mark.parametrize("backend", [None, "numpy"])
    def test_uniform_counter_measurement(self, backend):
        kwargs = {} if backend is None else {"backend": backend}
        measurement = measure_psi_threshold_time(
            "ring", 8, 2.0, repetitions=4, seed=77, rng_policy="counter", **kwargs
        )
        assert tuple(measurement.repetition_rounds) == self.UNIFORM_GOLDEN

    @pytest.mark.parametrize("backend", [None, "numpy"])
    def test_pertask_variant_counter_measurement(self, backend):
        kwargs = {} if backend is None else {"backend": backend}
        measurement = measure_variant_threshold_time(
            "ring",
            12,
            0.0,
            repetitions=4,
            seed=9,
            rng_policy="counter",
            variant="per-task",
            m=60,
            max_rounds=5000,
            churn_window=10,
            **kwargs,
        )
        assert tuple(measurement.repetition_rounds) == self.PERTASK_GOLDEN
        assert measurement.churn_per_round == pytest.approx(0.7)


class TestSparseRowFill:
    """Regression pins for the contiguous-run ``site_uniforms`` rewrite.

    Retired replicas leave gaps in the active-row set; the fill now
    splits the rows into contiguous runs and addresses each run's Philox
    words absolutely, so the gaps cost zero draws while every returned
    bit stays identical to the old low..high full-span gather.
    """

    SPARSE_SUM = 11.735004296001582
    SPARSE_COLUMN = (
        0.892313776356578,
        0.17343290593792093,
        0.49751473435806737,
        0.20769237074300784,
        0.391304185325254,
    )
    WINDOWED_SUM = 5.363869821983516
    WINDOWED_HEAD = (
        0.0982179468029648,
        0.5750730201607134,
        0.13388089831970584,
        0.5273813589649956,
    )

    def test_sparse_rows_pinned(self):
        streams = CounterStreams(4242, 10)
        streams.begin_round(3)
        block = streams.site_uniforms(
            "weighted-migrate", np.array([0, 1, 4, 7, 8]), 5
        )
        assert block.shape == (5, 5)
        assert float(block.sum()) == self.SPARSE_SUM
        np.testing.assert_array_equal(block[:, 0], np.array(self.SPARSE_COLUMN))

    def test_windowed_sparse_rows_pinned(self):
        streams = CounterStreams(4242, 6, replica_offset=4, total_replicas=12)
        streams.begin_round(0)
        block = streams.site_uniforms("site-x", np.array([0, 2, 3, 5]), 3)
        assert float(block.sum()) == self.WINDOWED_SUM
        np.testing.assert_array_equal(
            block.ravel()[:4], np.array(self.WINDOWED_HEAD)
        )

    def test_sparse_equals_full_span_gather(self):
        """Run splitting is invisible: gathering from the dense block
        of the covering span gives the identical bits, for sorted,
        unsorted and duplicated row sets."""
        width = 7
        for rows in (
            np.array([2, 3, 9, 10, 11, 30]),
            np.array([5]),
            np.array([11, 2, 2, 30, 9]),
        ):
            streams = CounterStreams(99, 32)
            streams.begin_round(4)
            sparse = streams.site_uniforms("site-a", rows, width)
            dense_streams = CounterStreams(99, 32)
            dense_streams.begin_round(4)
            low, high = int(rows.min()), int(rows.max())
            dense = dense_streams.site_uniforms(
                "site-a", np.arange(low, high + 1), width
            )
            np.testing.assert_array_equal(sparse, dense[rows - low])

    def test_backend_hook_path_is_bit_identical(self):
        """Routing the fill through the numpy backend's Philox hook
        changes nothing bit-wise vs the inline default."""
        rows = np.array([0, 1, 4, 7, 8])
        hooked = CounterStreams(4242, 10, backend=resolve_backend("numpy"))
        hooked.begin_round(3)
        block = hooked.site_uniforms("weighted-migrate", rows, 5)
        assert float(block.sum()) == self.SPARSE_SUM
        np.testing.assert_array_equal(block[:, 0], np.array(self.SPARSE_COLUMN))


@pytest.mark.parametrize(
    "name",
    [
        pytest.param(name, marks=_BACKEND_MARKS[name])
        for name in ("numba", "cupy")
    ],
)
class TestAcceleratedBackends:
    """Law-level contracts for the fused-kernel backends.

    The fused kernels replace the numpy arithmetic, so the contract is
    the counter layout's own: same-seed determinism, exact per-replica
    conservation, and KS agreement with the numpy reference — not
    bit-identity (summation order and, for cupy, the Philox variant
    differ).
    """

    def test_registers_fused_kernels(self, name):
        backend = resolve_backend(name, warn=False)
        assert backend.name == name
        for kernel_name in KERNEL_NAMES:
            assert callable(backend.kernel(kernel_name))

    def test_same_seed_determinism(self, name):
        def run():
            return measure_weighted_threshold_time(
                "ring",
                8,
                8.0,
                repetitions=6,
                seed=123,
                rng_policy="counter",
                backend=name,
            ).repetition_rounds

        np.testing.assert_array_equal(np.asarray(run()), np.asarray(run()))

    def test_weighted_conservation_through_fused_kernel(self, name):
        from repro.core.protocols import SelfishWeightedProtocol
        from repro.graphs.generators import cycle_graph
        from repro.model.batch import BatchWeightedState
        from repro.model.placement import place_weighted_random
        from repro.model.speeds import two_class_speeds
        from repro.model.state import WeightedState
        from repro.model.tasks import two_class_weights
        from repro.utils.rng import spawn_rngs

        backend = resolve_backend(name, warn=False)
        n, m, replicas = 8, 120, 6
        graph = cycle_graph(n)
        speeds = two_class_speeds(n, fast_fraction=0.25, fast_speed=2.0)
        weights = two_class_weights(m, heavy_fraction=0.1, heavy=1.0, light=0.1)
        states = [
            WeightedState(place_weighted_random(m, n, rng), weights, speeds)
            for rng in spawn_rngs(11, replicas)
        ]
        streams = CounterStreams(11, replicas, backend=backend)
        assert_batch_conserves(
            BatchWeightedState.from_states(states),
            _BackendProtocol(SelfishWeightedProtocol(), backend),
            graph,
            streams,
            rounds=25,
            retired=(2,),
        )

    def test_weighted_law_agreement_with_numpy(self, name):
        reference = measure_weighted_threshold_time(
            "ring", 8, 4.0, repetitions=40, seed=1234, rng_policy="counter"
        )
        accelerated = measure_weighted_threshold_time(
            "ring",
            8,
            4.0,
            repetitions=40,
            seed=1234,
            rng_policy="counter",
            backend=name,
        )
        assert accelerated.num_converged == accelerated.num_repetitions
        assert_ks_agreement(
            np.asarray(reference.repetition_rounds),
            np.asarray(accelerated.repetition_rounds),
            label=f"numpy vs {name} weighted first-hit distributions",
        )

    def test_uniform_law_agreement_with_numpy(self, name):
        reference = measure_psi_threshold_time(
            "ring", 8, 2.0, repetitions=40, seed=555, rng_policy="counter"
        )
        accelerated = measure_psi_threshold_time(
            "ring",
            8,
            2.0,
            repetitions=40,
            seed=555,
            rng_policy="counter",
            backend=name,
        )
        assert accelerated.num_converged == accelerated.num_repetitions
        assert_ks_agreement(
            np.asarray(reference.repetition_rounds),
            np.asarray(accelerated.repetition_rounds),
            label=f"numpy vs {name} uniform first-hit distributions",
        )


class TestExecutorAndCLIDegradation:
    def test_cellspec_rejects_unknown_backend(self):
        from repro.experiments.executor import CellSpec, run_cell

        spec = CellSpec(
            kind="weighted",
            family="ring",
            n=8,
            m_factor=8.0,
            repetitions=2,
            seed=5,
            backend="jax",
        )
        with pytest.raises(ValidationError, match="backend must be one of"):
            run_cell(spec)

    def test_run_experiment_records_backend_fallback(self, tmp_path):
        missing = [
            name for name in ("cupy", "numba") if name not in available_backends()
        ]
        if not missing:
            pytest.skip("all optional backends installed; nothing degrades")
        from repro.experiments.registry import run_experiment

        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            result = run_experiment(
                "weighted-variants", quick=True, seed=7, backend=missing[0]
            )
        assert result.passed
        meta = result.data["run_meta"]
        assert meta["backend_requested"] == missing[0]
        assert meta["backend_effective"] == "numpy"

    def test_cli_backend_cupy_degrades_to_exit_zero(self, tmp_path, capsys):
        if "cupy" in available_backends():
            pytest.skip("cupy installed and usable; no degradation to test")
        import json

        from repro.experiments.__main__ import main

        json_path = tmp_path / "result.json"
        with warnings.catch_warnings():
            warnings.simplefilter("always")
            exit_code = main(
                [
                    "run",
                    "weighted-variants",
                    "--backend",
                    "cupy",
                    "--seed",
                    "7",
                    "--json",
                    str(json_path),
                ]
            )
        capsys.readouterr()
        assert exit_code == 0
        meta = json.loads(json_path.read_text())["weighted-variants"]["run_meta"]
        assert meta["backend_requested"] == "cupy"
        assert meta["backend_effective"] == "numpy"
