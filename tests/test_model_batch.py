"""Tests for repro.model.batch (the replica-stack states)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.potentials import psi0_potential, psi1_potential
from repro.errors import ModelError
from repro.model.batch import BatchUniformState, BatchWeightedState
from repro.model.state import UniformState, WeightedState


def make_batch():
    counts = np.array([[4, 0, 2], [1, 1, 1], [0, 0, 9]])
    return BatchUniformState(counts, [1.0, 1.0, 2.0])


class TestConstruction:
    def test_dimensions(self):
        batch = make_batch()
        assert batch.num_replicas == 3
        assert batch.num_nodes == 3
        np.testing.assert_array_equal(batch.num_tasks, [6, 3, 9])

    def test_rejects_1d(self):
        with pytest.raises(ModelError):
            BatchUniformState([1, 2, 3], [1.0, 1.0, 1.0])

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            BatchUniformState([[1, -2]], [1.0, 1.0])

    def test_rejects_non_integral(self):
        with pytest.raises(ModelError):
            BatchUniformState([[1.5, 2.0]], [1.0, 1.0])

    def test_coerces_integral_floats(self):
        batch = BatchUniformState([[1.0, 2.0]], [1.0, 1.0])
        assert batch.counts.dtype == np.int64

    def test_speed_length_must_match(self):
        with pytest.raises(Exception):
            BatchUniformState([[1, 2, 3]], [1.0, 1.0])

    def test_from_states(self):
        states = [
            UniformState([4, 0, 2], [1.0, 1.0, 2.0]),
            UniformState([1, 1, 1], [1.0, 1.0, 2.0]),
        ]
        batch = BatchUniformState.from_states(states)
        np.testing.assert_array_equal(batch.counts, [[4, 0, 2], [1, 1, 1]])

    def test_from_states_rejects_mixed_speeds(self):
        states = [
            UniformState([4, 0], [1.0, 1.0]),
            UniformState([1, 1], [1.0, 2.0]),
        ]
        with pytest.raises(ModelError):
            BatchUniformState.from_states(states)

    def test_from_states_rejects_empty(self):
        with pytest.raises(ModelError):
            BatchUniformState.from_states([])

    def test_can_stack_mirrors_from_states(self):
        same = [
            UniformState([4, 0], [1.0, 1.0]),
            UniformState([1, 1], [1.0, 1.0]),
        ]
        mixed_speeds = [
            UniformState([4, 0], [1.0, 1.0]),
            UniformState([1, 1], [1.0, 2.0]),
        ]
        assert BatchUniformState.can_stack(same)
        assert not BatchUniformState.can_stack(mixed_speeds)
        assert not BatchUniformState.can_stack([])
        assert not BatchUniformState.can_stack([object()])

    def test_replicate(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        batch = BatchUniformState.replicate(state, 4)
        assert batch.num_replicas == 4
        np.testing.assert_array_equal(batch.counts[3], [4, 0, 2])

    def test_replica_round_trip(self):
        batch = make_batch()
        replica = batch.replica(1)
        assert isinstance(replica, UniformState)
        np.testing.assert_array_equal(replica.counts, [1, 1, 1])
        np.testing.assert_array_equal(replica.speeds, batch.speeds)

    def test_replica_out_of_range(self):
        with pytest.raises(ModelError):
            make_batch().replica(3)


class TestDerivedQuantities:
    """Every batched quantity must agree row-wise with the scalar state."""

    def test_rowwise_match(self):
        batch = make_batch()
        for r in range(batch.num_replicas):
            scalar = batch.replica(r)
            np.testing.assert_allclose(batch.loads[r], scalar.loads)
            np.testing.assert_allclose(batch.deviation[r], scalar.deviation)
            np.testing.assert_allclose(
                batch.target_weights[r], scalar.target_weights
            )
            assert batch.max_load_difference[r] == pytest.approx(
                scalar.max_load_difference
            )
            assert batch.average_load[r] == pytest.approx(scalar.average_load)
            assert batch.total_weight[r] == pytest.approx(scalar.total_weight)

    def test_potentials_match_scalar(self):
        batch = make_batch()
        psi0 = batch.psi0_potentials()
        psi1 = batch.psi1_potentials()
        for r in range(batch.num_replicas):
            scalar = batch.replica(r)
            assert psi0[r] == pytest.approx(psi0_potential(scalar))
            assert psi1[r] == pytest.approx(psi1_potential(scalar))

    def test_deviation_rows_sum_to_zero(self):
        np.testing.assert_allclose(
            make_batch().deviation.sum(axis=1), 0.0, atol=1e-9
        )


class TestMutation:
    def test_counts_read_only(self):
        batch = make_batch()
        with pytest.raises(ValueError):
            batch.counts[0, 0] = 5
        with pytest.raises(ValueError):
            batch.speeds[0] = 5.0

    def test_apply_flows(self):
        batch = make_batch()
        sent = np.array([[2, 0, 0], [0, 0, 1]])
        received = np.array([[0, 2, 0], [1, 0, 0]])
        batch.apply_flows([0, 2], sent, received)
        np.testing.assert_array_equal(
            batch.counts, [[2, 2, 2], [1, 1, 1], [1, 0, 8]]
        )

    def test_apply_flows_conservation_enforced(self):
        batch = make_batch()
        sent = np.array([[2, 0, 0]])
        received = np.array([[0, 1, 0]])  # one task vanished
        with pytest.raises(ModelError):
            batch.apply_flows([0], sent, received)

    def test_apply_flows_negative_counts_rejected(self):
        batch = make_batch()
        sent = np.array([[0, 2, 0]])  # node 1 has no tasks in replica 0
        received = np.array([[2, 0, 0]])
        with pytest.raises(ModelError):
            batch.apply_flows([0], sent, received)

    def test_apply_flows_shape_checked(self):
        batch = make_batch()
        with pytest.raises(ModelError):
            batch.apply_flows([0], np.zeros((1, 2), dtype=int), np.zeros((1, 2), dtype=int))

    def test_copy_independent(self):
        batch = make_batch()
        clone = batch.copy()
        batch.apply_flows(
            [0], np.array([[2, 0, 0]]), np.array([[0, 2, 0]])
        )
        np.testing.assert_array_equal(clone.counts[0], [4, 0, 2])

    def test_repr(self):
        assert "R=3" in repr(make_batch())


def make_weighted_batch():
    """Two replicas with different task counts (padding exercised)."""
    states = [
        WeightedState([0, 1, 1, 2], [0.5, 0.25, 1.0, 0.75], [1.0, 1.0, 2.0]),
        WeightedState([2, 0], [0.3, 0.6], [1.0, 1.0, 2.0]),
    ]
    return BatchWeightedState.from_states(states), states


class TestWeightedConstruction:
    def test_padded_layout(self):
        batch, states = make_weighted_batch()
        assert batch.num_replicas == 2
        assert batch.num_nodes == 3
        assert batch.max_tasks == 4
        np.testing.assert_array_equal(batch.num_tasks, [4, 2])
        np.testing.assert_array_equal(batch.task_nodes[1], [2, 0, -1, -1])
        np.testing.assert_array_equal(batch.task_weights[1], [0.3, 0.6, 0.0, 0.0])
        np.testing.assert_array_equal(
            batch.task_mask, [[True] * 4, [True, True, False, False]]
        )

    def test_rejects_1d(self):
        with pytest.raises(ModelError):
            BatchWeightedState([0, 1], [0.5, 0.5], [1.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ModelError):
            BatchWeightedState([[0, 1]], [[0.5]], [1.0, 1.0])

    def test_rejects_out_of_range_locations(self):
        with pytest.raises(ModelError):
            BatchWeightedState([[0, 5]], [[0.5, 0.5]], [1.0, 1.0])
        with pytest.raises(ModelError):
            BatchWeightedState([[0, -2]], [[0.5, 0.5]], [1.0, 1.0])

    def test_rejects_invalid_weights(self):
        with pytest.raises(ModelError):
            BatchWeightedState([[0, 1]], [[0.5, 1.5]], [1.0, 1.0])
        with pytest.raises(ModelError):
            BatchWeightedState([[0, 1]], [[0.5, 0.0]], [1.0, 1.0])

    def test_from_states_rejects_mixed_speeds(self):
        states = [
            WeightedState([0], [0.5], [1.0, 1.0]),
            WeightedState([0], [0.5], [1.0, 2.0]),
        ]
        with pytest.raises(ModelError):
            BatchWeightedState.from_states(states)
        assert not BatchWeightedState.can_stack(states)

    def test_can_stack_allows_ragged_tasks(self):
        _, states = make_weighted_batch()
        assert BatchWeightedState.can_stack(states)
        assert not BatchWeightedState.can_stack([])
        assert not BatchWeightedState.can_stack(
            [UniformState([1, 2], [1.0, 1.0])]
        )

    def test_replicate(self):
        state = WeightedState([0, 2], [0.5, 0.9], [1.0, 1.0, 2.0])
        batch = BatchWeightedState.replicate(state, 3)
        assert batch.num_replicas == 3
        np.testing.assert_array_equal(batch.task_nodes[2], [0, 2])

    def test_replica_round_trip_strips_padding(self):
        batch, states = make_weighted_batch()
        replica = batch.replica(1)
        assert isinstance(replica, WeightedState)
        np.testing.assert_array_equal(replica.task_nodes, states[1].task_nodes)
        np.testing.assert_array_equal(
            replica.task_weights, states[1].task_weights
        )
        np.testing.assert_allclose(
            replica.node_weights, states[1].node_weights
        )

    def test_replica_out_of_range(self):
        batch, _ = make_weighted_batch()
        with pytest.raises(ModelError):
            batch.replica(2)


class TestWeightedDerivedQuantities:
    """Every batched quantity must agree row-wise with the scalar state."""

    def test_rowwise_match(self):
        batch, states = make_weighted_batch()
        for r, scalar in enumerate(states):
            np.testing.assert_allclose(batch.node_weights[r], scalar.node_weights)
            np.testing.assert_allclose(batch.loads[r], scalar.loads)
            np.testing.assert_allclose(batch.deviation[r], scalar.deviation)
            assert batch.max_load_difference[r] == pytest.approx(
                scalar.max_load_difference
            )
            assert batch.total_weight[r] == pytest.approx(scalar.total_weight)
            assert batch.psi0_potentials()[r] == pytest.approx(
                psi0_potential(scalar)
            )
            assert batch.psi1_potentials()[r] == pytest.approx(
                psi1_potential(scalar)
            )

    def test_loads_for_rows(self):
        batch, states = make_weighted_batch()
        np.testing.assert_allclose(batch.loads_for([1])[0], states[1].loads)

    def test_total_task_weight_ignores_padding(self):
        batch, states = make_weighted_batch()
        np.testing.assert_allclose(
            batch.total_task_weight,
            [state.total_weight for state in states],
        )


class TestWeightedMutation:
    def test_arrays_read_only(self):
        batch, _ = make_weighted_batch()
        with pytest.raises(ValueError):
            batch.task_nodes[0, 0] = 1
        with pytest.raises(ValueError):
            batch.task_weights[0, 0] = 0.9
        with pytest.raises(ValueError):
            batch.task_mask[0, 0] = False

    def test_apply_moves_updates_node_weights(self):
        batch, _ = make_weighted_batch()
        batch.apply_moves([0, 1], [0, 1], [1, 2])
        assert batch.task_nodes[0, 0] == 1
        assert batch.task_nodes[1, 1] == 2
        rebuilt = batch.copy()
        rebuilt.rebuild_node_weights()
        np.testing.assert_allclose(
            batch.node_weights, rebuilt.node_weights, atol=1e-12
        )

    def test_apply_moves_rejects_padding_slot(self):
        batch, _ = make_weighted_batch()
        with pytest.raises(ModelError):
            batch.apply_moves([1], [3], [0])

    def test_apply_moves_rejects_duplicate_task(self):
        batch, _ = make_weighted_batch()
        with pytest.raises(ModelError):
            batch.apply_moves([0, 0], [1, 1], [0, 2])

    def test_apply_moves_rejects_bad_destination(self):
        batch, _ = make_weighted_batch()
        with pytest.raises(ModelError):
            batch.apply_moves([0], [0], [7])

    def test_copy_independent(self):
        batch, _ = make_weighted_batch()
        clone = batch.copy()
        batch.apply_moves([0], [0], [2])
        assert clone.task_nodes[0, 0] == 0

    def test_repr(self):
        batch, _ = make_weighted_batch()
        assert "R=2" in repr(batch)


class TestScenarioMutationApis:
    """PR 4 state-mutation APIs backing the scenario events."""

    def test_adjust_counts_changes_totals(self):
        batch = BatchUniformState(np.array([[5, 0], [1, 1]]), np.ones(2))
        batch.adjust_counts([0, 1], np.array([[-2, 3], [0, -1]]))
        np.testing.assert_array_equal(batch.counts, [[3, 3], [1, 0]])

    def test_adjust_counts_rejects_negative_result(self):
        batch = BatchUniformState(np.array([[5, 0]]), np.ones(2))
        with pytest.raises(ModelError):
            batch.adjust_counts([0], np.array([[-10, 0]]))

    def test_adjust_counts_rejects_duplicate_rows(self):
        """Fancy-index assignment would silently keep only the last
        duplicate's delta."""
        batch = BatchUniformState(np.array([[5, 5]]), np.ones(2))
        with pytest.raises(ModelError, match="duplicate replica"):
            batch.adjust_counts([0, 0], np.array([[1, 0], [0, 1]]))

    def test_weighted_add_remove_roundtrip(self):
        from repro.model.state import WeightedState

        states = [
            WeightedState([0, 1], [0.5, 0.2], np.ones(3)),
            WeightedState([2], [0.9], np.ones(3)),
        ]
        batch = BatchWeightedState.from_states(states)
        batch.add_tasks([1, 1], [0, 2], [0.3, 0.4])
        np.testing.assert_array_equal(batch.num_tasks, [2, 3])
        # Appended after the last live slot, preserving live order.
        np.testing.assert_allclose(
            batch.replica(1).task_weights, [0.9, 0.3, 0.4]
        )
        batch.remove_tasks([1], [1])  # drop the 0.3 task
        np.testing.assert_allclose(batch.replica(1).task_weights, [0.9, 0.4])
        rebuilt = batch.copy()
        rebuilt.rebuild_node_weights()
        np.testing.assert_allclose(
            batch.node_weights, rebuilt.node_weights, atol=1e-12
        )

    def test_remove_rejects_padding_and_duplicates(self):
        from repro.model.state import WeightedState

        batch = BatchWeightedState.from_states(
            [
                WeightedState([0, 1], [0.5, 0.2], np.ones(3)),
                WeightedState([2], [0.9], np.ones(3)),
            ]
        )
        with pytest.raises(ModelError, match="padding"):
            batch.remove_tasks([1], [1])
        with pytest.raises(ModelError, match="duplicate"):
            batch.remove_tasks([0, 0], [1, 1])

    def test_compact_preserves_live_order(self):
        from repro.model.state import WeightedState

        batch = BatchWeightedState.from_states(
            [WeightedState([0, 1, 2, 0], [0.1, 0.2, 0.3, 0.4], np.ones(3))]
        )
        batch.remove_tasks([0, 0], [0, 2])
        before = batch.replica(0)
        batch.compact()
        assert batch.max_tasks == 2
        after = batch.replica(0)
        np.testing.assert_array_equal(before.task_nodes, after.task_nodes)
        np.testing.assert_allclose(before.task_weights, after.task_weights)

    def test_rescale_speed_shared(self):
        batch = BatchUniformState(np.array([[5, 0], [1, 1]]), np.ones(2))
        batch.rescale_speed(0, 2.0)
        assert batch.speeds[0] == 2.0
        with pytest.raises(Exception):
            batch.rescale_speed(0, -1.0)
