"""Tests for the workload trace model, generators, and file format."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceEvent,
    WorkloadTrace,
    available_workloads,
    build_workload,
    load_trace,
    merge_traces,
    save_trace,
    task_timeline,
    validate_trace,
)
from repro.workloads.generators import (
    adversarial_trace,
    diurnal_trace,
    flash_crowd_trace,
    mmpp_trace,
)


class TestTraceEvent:
    def test_arrival_deltas(self):
        event = TraceEvent(round_index=3, kind="arrival", targets=(0, 1, 1))
        assert event.task_delta == 3
        assert event.task_events == 3

    def test_departure_deltas(self):
        event = TraceEvent(round_index=0, kind="departure", count=5)
        assert event.task_delta == -5
        assert event.task_events == 5

    def test_relocation_is_conserving(self):
        event = TraceEvent(
            round_index=2, kind="relocation", node=1, fraction=0.5
        )
        assert event.task_delta == 0
        assert event.task_events == 0

    def test_rejects_bad_fields(self):
        with pytest.raises(ValidationError):
            TraceEvent(round_index=-1, kind="arrival", targets=(0,))
        with pytest.raises(ValidationError):
            TraceEvent(round_index=0, kind="tsunami")
        with pytest.raises(ValidationError):
            TraceEvent(round_index=0, kind="relocation", node=0, fraction=1.5)
        with pytest.raises(ValidationError):
            TraceEvent(round_index=0, kind="arrival", targets=(0,), weight=0.0)


class TestValidation:
    def test_target_out_of_range_rejected(self):
        trace = WorkloadTrace(
            num_nodes=4,
            horizon=10,
            seed=1,
            initial_tasks=0,
            events=(
                TraceEvent(round_index=0, kind="arrival", targets=(4,)),
            ),
        )
        with pytest.raises(ValidationError):
            validate_trace(trace)

    def test_unsorted_events_rejected(self):
        trace = WorkloadTrace(
            num_nodes=4,
            horizon=10,
            seed=1,
            initial_tasks=0,
            events=(
                TraceEvent(round_index=5, kind="arrival", targets=(0,)),
                TraceEvent(round_index=2, kind="arrival", targets=(1,)),
            ),
        )
        with pytest.raises(ValidationError):
            validate_trace(trace)

    def test_departure_unsafe_rejected(self):
        trace = WorkloadTrace(
            num_nodes=4,
            horizon=10,
            seed=1,
            initial_tasks=2,
            events=(
                TraceEvent(round_index=1, kind="departure", count=3),
            ),
        )
        with pytest.raises(ValidationError, match="departure-safe"):
            validate_trace(trace)

    def test_event_beyond_horizon_rejected(self):
        trace = WorkloadTrace(
            num_nodes=4,
            horizon=10,
            seed=1,
            initial_tasks=0,
            events=(
                TraceEvent(round_index=10, kind="arrival", targets=(0,)),
            ),
        )
        with pytest.raises(ValidationError):
            validate_trace(trace)


class TestTimeline:
    def test_timeline_tracks_running_total(self):
        trace = WorkloadTrace(
            num_nodes=3,
            horizon=5,
            seed=0,
            initial_tasks=10,
            events=(
                TraceEvent(round_index=1, kind="arrival", targets=(0, 1)),
                TraceEvent(round_index=3, kind="departure", count=4),
                TraceEvent(
                    round_index=4, kind="relocation", node=0, fraction=0.5
                ),
            ),
        )
        timeline = task_timeline(trace)
        np.testing.assert_array_equal(timeline, [10, 10, 12, 12, 8, 8])
        assert trace.final_tasks == 8


class TestGenerators:
    @pytest.mark.parametrize(
        "name", ["mmpp", "diurnal", "flash-crowd", "adversarial", "mmpp-flash"]
    )
    def test_build_workload_deterministic(self, name):
        kwargs = dict(num_nodes=8, horizon=40, seed=7, initial_tasks=30)
        first = build_workload(name, **kwargs)
        second = build_workload(name, **kwargs)
        assert first == second
        assert first.num_nodes == 8
        assert first.horizon == 40
        validate_trace(first)
        # Determinism is seed-sensitive.
        assert build_workload(name, num_nodes=8, horizon=40, seed=8,
                              initial_tasks=30) != first

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValidationError, match="unknown workload"):
            build_workload("tsunami", num_nodes=4, horizon=10, seed=1)

    def test_catalog_is_sorted_and_complete(self):
        names = available_workloads()
        assert names == sorted(names)
        assert {"mmpp", "diurnal", "flash-crowd", "adversarial"} <= set(names)

    def test_mmpp_produces_arrivals_and_departures(self):
        trace = mmpp_trace(6, 60, 3, initial_tasks=20)
        kinds = {event.kind for event in trace.events}
        assert "arrival" in kinds
        assert "departure" in kinds
        validate_trace(trace)

    def test_flash_crowd_emits_relocations(self):
        trace = flash_crowd_trace(6, 50, 3, initial_tasks=40, crowds=2)
        assert any(e.kind == "relocation" for e in trace.events)
        validate_trace(trace)

    def test_adversarial_counts_and_matched_departures(self):
        trace = adversarial_trace(
            6, 20, 3, count=4, period=2, initial_tasks=12
        )
        adversarial = [e for e in trace.events if e.kind == "adversarial"]
        assert all(e.count == 4 for e in adversarial)
        # Matched departures keep the timeline bounded.
        assert task_timeline(trace).max() <= 12 + 4
        validate_trace(trace)

    def test_diurnal_rate_modulation(self):
        trace = diurnal_trace(
            6, 96, 5, base_rate=12.0, amplitude=0.9, period=48
        )
        validate_trace(trace)
        assert trace.num_events > 0


class TestMerge:
    def test_merge_preserves_safety_and_order(self):
        first = mmpp_trace(6, 30, 1, initial_tasks=20)
        second = flash_crowd_trace(6, 40, 2, initial_tasks=30)
        merged = merge_traces(first, second)
        assert merged.initial_tasks == 50
        assert merged.horizon == 40
        rounds = [event.round_index for event in merged.events]
        assert rounds == sorted(rounds)
        validate_trace(merged)

    def test_merge_rejects_node_mismatch(self):
        with pytest.raises(ValidationError):
            merge_traces(
                mmpp_trace(6, 10, 1, initial_tasks=50),
                mmpp_trace(8, 10, 1, initial_tasks=50),
            )


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        trace = build_workload(
            "mmpp-flash", num_nodes=10, horizon=50, seed=9, initial_tasks=40
        )
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_header_fields(self, tmp_path):
        trace = mmpp_trace(5, 20, 4, initial_tasks=15)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_VERSION
        assert header["num_nodes"] == 5
        assert header["num_events"] == trace.num_events

    def test_wrong_format_rejected(self, tmp_path):
        trace = mmpp_trace(5, 20, 4, initial_tasks=15)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["format"] = "not-a-trace"
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValidationError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        trace = mmpp_trace(5, 20, 4, initial_tasks=15)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = TRACE_VERSION + 1
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValidationError):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        trace = mmpp_trace(5, 20, 4, initial_tasks=15)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValidationError):
            load_trace(path)
