"""Tests for repro.scenarios.events: every event on every state type."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import ModelError, ValidationError
from repro.graphs.generators import cycle_graph, star_graph
from repro.model.batch import BatchUniformState, BatchWeightedState
from repro.model.state import UniformState, WeightedState
from repro.scenarios import (
    LoadShock,
    NodeDrain,
    NodeOutage,
    PoissonChurnEvent,
    SpeedChange,
    TaskArrival,
    TaskDeparture,
)
from repro.utils.rng import spawn_rngs


@pytest.fixture
def uniform4():
    return UniformState(np.array([10, 5, 0, 5]), np.ones(4))


@pytest.fixture
def weighted4(rng):
    locations = rng.integers(0, 4, size=30)
    weights = rng.uniform(0.1, 1.0, size=30)
    return WeightedState(locations, weights, np.ones(4))


def _uniform_batch(num_replicas=5, n=4, m=40, seed=3):
    rngs = spawn_rngs(seed, num_replicas)
    counts = np.stack(
        [np.bincount(r.integers(0, n, m), minlength=n) for r in rngs]
    )
    return BatchUniformState(counts, np.ones(n)), rngs


def _weighted_batch(num_replicas=5, n=4, m=20, seed=3):
    rngs = spawn_rngs(seed, num_replicas)
    states = [
        WeightedState(
            r.integers(0, n, m), r.uniform(0.1, 1.0, m), np.ones(n)
        )
        for r in rngs
    ]
    return BatchWeightedState.from_states(states), rngs


class TestTaskArrival:
    def test_targeted_uniform(self, uniform4, rng):
        outcome = TaskArrival(7, node=2).apply(uniform4, None, rng)
        assert uniform4.counts[2] == 7
        assert outcome.tasks_added == 7 and outcome.weight_added == 7.0

    def test_random_uniform_total(self, uniform4, rng):
        TaskArrival(100).apply(uniform4, None, rng)
        assert uniform4.num_tasks == 120

    def test_weighted_appends_in_order(self, weighted4, rng):
        before = weighted4.num_tasks
        outcome = TaskArrival(3, node=1, weight=0.25).apply(weighted4, None, rng)
        assert weighted4.num_tasks == before + 3
        assert np.allclose(weighted4.task_weights[-3:], 0.25)
        assert np.all(weighted4.task_nodes[-3:] == 1)
        assert outcome.weight_added == pytest.approx(0.75)

    def test_zero_noop_consumes_no_randomness(self, uniform4):
        rng = np.random.default_rng(5)
        TaskArrival(0).apply(uniform4, None, rng)
        fresh = np.random.default_rng(5)
        assert rng.integers(0, 1000) == fresh.integers(0, 1000)

    def test_batch_uniform_adds_everywhere(self):
        batch, rngs = _uniform_batch()
        totals = batch.num_tasks.copy()
        outcome = TaskArrival(9).apply_batch(batch, None, rngs)
        np.testing.assert_array_equal(batch.num_tasks, totals + 9)
        np.testing.assert_array_equal(outcome.tasks_added, np.full(5, 9))

    def test_batch_weighted_grows_padded_axis(self):
        batch, rngs = _weighted_batch()
        width = batch.max_tasks
        TaskArrival(4, weight=0.5).apply_batch(batch, None, rngs)
        assert batch.max_tasks == width + 4
        np.testing.assert_array_equal(batch.num_tasks, np.full(5, 24))

    def test_bad_node_rejected(self, uniform4, rng):
        with pytest.raises(ModelError):
            TaskArrival(1, node=9).apply(uniform4, None, rng)

    def test_bad_weight_rejected(self):
        with pytest.raises(ValidationError):
            TaskArrival(1, weight=1.5)
        with pytest.raises(ValidationError):
            TaskArrival(-1)


class TestTaskDeparture:
    def test_removes_exactly(self, uniform4, rng):
        outcome = TaskDeparture(6).apply(uniform4, None, rng)
        assert uniform4.num_tasks == 14
        assert outcome.tasks_removed == 6

    def test_overremoval_clears(self, uniform4, rng):
        TaskDeparture(1000).apply(uniform4, None, rng)
        assert uniform4.num_tasks == 0

    def test_empty_noop(self, rng):
        empty = UniformState(np.zeros(3, dtype=np.int64), np.ones(3))
        assert TaskDeparture(5).apply(empty, None, rng) .tasks_removed == 0

    def test_weighted_removes_weight(self, weighted4, rng):
        total = weighted4.task_weights.sum()
        outcome = TaskDeparture(10).apply(weighted4, None, rng)
        assert weighted4.num_tasks == 20
        assert weighted4.task_weights.sum() == pytest.approx(
            total - outcome.weight_removed
        )

    def test_batch_weighted_marks_padding(self):
        batch, rngs = _weighted_batch()
        outcome = TaskDeparture(5).apply_batch(batch, None, rngs)
        np.testing.assert_array_equal(batch.num_tasks, np.full(5, 15))
        np.testing.assert_array_equal(outcome.tasks_removed, np.full(5, 5))
        rebuilt = batch.copy()
        rebuilt.rebuild_node_weights()
        np.testing.assert_allclose(
            batch.node_weights, rebuilt.node_weights, atol=1e-12
        )


class TestLoadShock:
    def test_full_shock_moves_everything(self, uniform4, rng):
        outcome = LoadShock(1.0, node=0).apply(uniform4, None, rng)
        assert outcome.tasks_relocated == 10
        assert uniform4.counts[0] == 20
        assert uniform4.num_tasks == 20

    def test_conserves_tasks(self, weighted4, rng):
        total = weighted4.task_weights.sum()
        LoadShock(0.5, node=1).apply(weighted4, None, rng)
        assert weighted4.task_weights.sum() == pytest.approx(total)

    def test_batch_uniform_conserves(self):
        batch, rngs = _uniform_batch()
        totals = batch.num_tasks.copy()
        LoadShock(0.7, node=0).apply_batch(batch, None, rngs)
        np.testing.assert_array_equal(batch.num_tasks, totals)

    def test_fraction_validated(self):
        with pytest.raises(ValidationError):
            LoadShock(1.5, node=0)


class TestSpeedChange:
    def test_scalar(self, uniform4, rng):
        loads_before = uniform4.loads.copy()
        SpeedChange(0, 2.0).apply(uniform4, None, rng)
        assert uniform4.speeds[0] == 2.0
        assert uniform4.loads[0] == pytest.approx(loads_before[0] / 2.0)

    def test_batch_shared_speeds(self):
        batch, rngs = _uniform_batch()
        SpeedChange(1, 4.0).apply_batch(batch, None, rngs)
        assert batch.speeds[1] == 4.0

    def test_batch_subset_rejected(self):
        """Speeds are shared across the stack — a subset application
        would desynchronize the untouched replicas."""
        batch, rngs = _uniform_batch()
        with pytest.raises(ModelError, match="shared speed"):
            SpeedChange(1, 4.0).apply_batch(batch, None, rngs, replicas=[0])
        with pytest.raises(ModelError, match="shared speed"):
            NodeOutage(1).apply_batch(batch, cycle_graph(4), rngs, replicas=[0])

    def test_factor_validated(self):
        with pytest.raises(ValidationError):
            SpeedChange(0, 0.0)


class TestNodeDrain:
    def test_drains_to_neighbours(self, rng):
        graph = star_graph(5)  # node 0 is the hub
        state = UniformState(np.array([20, 0, 0, 0, 0]), np.ones(5))
        outcome = NodeDrain(0).apply(state, graph, rng)
        assert outcome.tasks_relocated == 20
        assert state.counts[0] == 0
        assert state.num_tasks == 20

    def test_empty_node_noop(self, rng):
        graph = cycle_graph(4)
        state = UniformState(np.array([0, 5, 5, 5]), np.ones(4))
        assert NodeDrain(0).apply(state, graph, rng).tasks_relocated == 0

    def test_weighted_batch_drains(self):
        graph = cycle_graph(4)
        batch, rngs = _weighted_batch()
        NodeDrain(2).apply_batch(batch, graph, rngs)
        live = batch.task_mask
        assert not np.any((batch.task_nodes == 2) & live)

    def test_needs_graph(self, uniform4, rng):
        with pytest.raises(ModelError):
            NodeDrain(0).apply(uniform4, None, rng)


class TestNodeOutage:
    def test_drain_plus_speed(self, rng):
        graph = cycle_graph(4)
        state = UniformState(np.array([8, 2, 2, 2]), np.ones(4))
        outcome = NodeOutage(0, residual_factor=0.5).apply(state, graph, rng)
        assert outcome.tasks_relocated == 8
        assert state.counts[0] == 0
        assert state.speeds[0] == 0.5

    def test_batch(self):
        graph = cycle_graph(4)
        batch, rngs = _uniform_batch()
        NodeOutage(0, residual_factor=0.25).apply_batch(batch, graph, rngs)
        assert batch.speeds[0] == 0.25
        assert np.all(batch.counts[:, 0] == 0)


class TestPoissonChurn:
    def test_stationary_in_expectation(self, rng):
        state = UniformState(np.full(4, 100), np.ones(4))
        event = PoissonChurnEvent(10.0)
        for _ in range(300):
            event.apply(state, None, rng)
        assert 200 <= state.num_tasks <= 600

    def test_weighted_churn(self, weighted4, rng):
        event = PoissonChurnEvent(3.0, weight=0.5)
        for _ in range(50):
            event.apply(weighted4, None, rng)
        assert weighted4.num_tasks > 0
        rebuilt = weighted4.copy()
        rebuilt.rebuild_node_weights()
        np.testing.assert_allclose(
            weighted4.node_weights, rebuilt.node_weights, atol=1e-9
        )

    def test_rate_validated(self):
        with pytest.raises(ValidationError):
            PoissonChurnEvent(-1.0)


class TestBatchScalarPathwise:
    """Batched event application consumes each replica's stream exactly
    as the scalar application does (weighted states: bit-identical)."""

    @pytest.mark.parametrize(
        "event",
        [
            TaskArrival(5, weight=0.5),
            TaskArrival(3, node=1, weight=0.3),
            TaskDeparture(4),
            PoissonChurnEvent(2.0, weight=0.5),
            LoadShock(0.5, node=0),
            NodeDrain(2),
            NodeOutage(1, residual_factor=0.5),
        ],
    )
    def test_weighted_event_pathwise(self, event):
        graph = cycle_graph(4)
        batch, _ = _weighted_batch(num_replicas=4, seed=11)
        scalars = [batch.replica(index) for index in range(4)]
        # Fresh spawned streams at identical positions for both paths.
        rngs_batch = spawn_rngs(99, 4)
        rngs_scalar = spawn_rngs(99, 4)
        event.apply_batch(batch, graph, rngs_batch)
        for index, (state, generator) in enumerate(zip(scalars, rngs_scalar)):
            event.apply(state, graph, generator)
            extracted = batch.replica(index)
            np.testing.assert_array_equal(extracted.task_nodes, state.task_nodes)
            np.testing.assert_allclose(
                extracted.task_weights, state.task_weights, atol=0.0
            )

    @pytest.mark.parametrize(
        "event",
        [
            TaskArrival(5),
            TaskDeparture(4),
            PoissonChurnEvent(2.0),
            LoadShock(0.5, node=0),
            NodeDrain(2),
        ],
    )
    def test_uniform_event_pathwise(self, event):
        graph = cycle_graph(4)
        batch, _ = _uniform_batch(num_replicas=4, seed=11)
        scalars = [batch.replica(index) for index in range(4)]
        # Fresh spawned streams at identical positions for both paths.
        rngs_batch = spawn_rngs(99, 4)
        rngs_scalar = spawn_rngs(99, 4)
        event.apply_batch(batch, graph, rngs_batch)
        for index, (state, generator) in enumerate(zip(scalars, rngs_scalar)):
            event.apply(state, graph, generator)
            np.testing.assert_array_equal(batch.counts[index], state.counts)


class TestEventValueSemantics:
    def test_events_picklable(self):
        events = [
            TaskArrival(5, node=1, weight=0.5),
            TaskDeparture(3),
            PoissonChurnEvent(2.5),
            LoadShock(0.4, node=2),
            SpeedChange(1, 0.5),
            NodeDrain(0),
            NodeOutage(3),
        ]
        for event in events:
            clone = pickle.loads(pickle.dumps(event))
            assert clone == event

    def test_describe_is_informative(self):
        assert "node 2" in LoadShock(0.5, node=2).describe()
        assert "rate" in PoissonChurnEvent(1.5).describe()


class TestCounterEventPaths:
    """Counter-layout applications: same semantics, block draws.

    Each event's counter path must preserve the event's invariants
    (totals, placement supports, outcome bookkeeping) — the law-level
    agreement with the scalar path is pinned end-to-end in
    ``tests/test_scenarios_runner.py``.
    """

    @staticmethod
    def _streams(num_replicas, seed=7, round_index=0):
        from repro.utils.rng import CounterStreams

        streams = CounterStreams(seed, num_replicas)
        streams.begin_round(round_index)
        return streams

    def test_arrival_uniform_counts(self):
        batch, _ = _uniform_batch()
        streams = self._streams(batch.num_replicas)
        before = batch.num_tasks.copy()
        outcome = TaskArrival(9).apply_batch(batch, None, streams)
        np.testing.assert_array_equal(batch.num_tasks, before + 9)
        np.testing.assert_array_equal(outcome.tasks_added, np.full(5, 9))

    def test_arrival_targeted_consumes_no_site(self):
        batch, _ = _uniform_batch()
        streams = self._streams(batch.num_replicas)
        TaskArrival(4, node=1).apply_batch(batch, None, streams)
        # No site was consumed for a deterministic placement.
        assert streams._site_sequence == 0

    def test_arrival_weighted_appends_in_slot_order(self):
        batch, _ = _weighted_batch()
        streams = self._streams(batch.num_replicas)
        widths = batch.num_tasks.copy()
        TaskArrival(3, weight=0.25).apply_batch(batch, None, streams)
        np.testing.assert_array_equal(batch.num_tasks, widths + 3)
        # The three new tasks occupy the trailing live slots of each row.
        for row in range(batch.num_replicas):
            live = np.flatnonzero(batch.task_mask[row])
            np.testing.assert_allclose(
                batch.task_weights[row, live[-3:]], 0.25
            )

    def test_departure_uniform_removes_exactly(self):
        batch, _ = _uniform_batch()
        streams = self._streams(batch.num_replicas)
        before = batch.num_tasks.copy()
        outcome = TaskDeparture(11).apply_batch(batch, None, streams)
        np.testing.assert_array_equal(batch.num_tasks, before - 11)
        np.testing.assert_array_equal(outcome.tasks_removed, np.full(5, 11))

    def test_departure_uniform_overremoval_clears(self):
        batch, _ = _uniform_batch(m=6)
        streams = self._streams(batch.num_replicas)
        TaskDeparture(1000).apply_batch(batch, None, streams)
        np.testing.assert_array_equal(batch.num_tasks, np.zeros(5, dtype=int))

    def test_departure_weighted_removes_and_accounts_weight(self):
        batch, _ = _weighted_batch()
        streams = self._streams(batch.num_replicas)
        total_before = batch.total_task_weight.copy()
        outcome = TaskDeparture(4).apply_batch(batch, None, streams)
        np.testing.assert_array_equal(
            batch.num_tasks, np.full(5, 16)
        )
        np.testing.assert_allclose(
            total_before - batch.total_task_weight, outcome.weight_removed
        )

    def test_shock_uniform_conserves_and_relocates(self):
        batch, _ = _uniform_batch()
        streams = self._streams(batch.num_replicas)
        before = batch.num_tasks.copy()
        outcome = LoadShock(1.0, node=2).apply_batch(batch, None, streams)
        np.testing.assert_array_equal(batch.num_tasks, before)
        np.testing.assert_array_equal(batch.counts[:, 2], before)
        assert np.all(outcome.tasks_relocated >= 0)

    def test_shock_weighted_fraction_zero_noop(self):
        batch, _ = _weighted_batch()
        streams = self._streams(batch.num_replicas)
        nodes = batch.task_nodes.copy()
        outcome = LoadShock(0.0, node=1).apply_batch(batch, None, streams)
        np.testing.assert_array_equal(batch.task_nodes, nodes)
        np.testing.assert_array_equal(outcome.tasks_relocated, np.zeros(5, int))

    def test_drain_uniform_empties_node(self):
        graph = cycle_graph(4)
        batch, _ = _uniform_batch()
        streams = self._streams(batch.num_replicas)
        before = batch.num_tasks.copy()
        evicted = batch.counts[:, 1].copy()
        outcome = NodeDrain(1).apply_batch(batch, graph, streams)
        np.testing.assert_array_equal(batch.counts[:, 1], 0)
        np.testing.assert_array_equal(batch.num_tasks, before)
        np.testing.assert_array_equal(outcome.tasks_relocated, evicted)
        # Evicted tasks landed on node 1's neighbours only (0 and 2).
        np.testing.assert_array_equal(batch.counts[:, 3], _uniform_batch()[0].counts[:, 3])

    def test_drain_weighted_empties_node(self):
        graph = cycle_graph(4)
        batch, _ = _weighted_batch()
        streams = self._streams(batch.num_replicas)
        NodeDrain(0).apply_batch(batch, graph, streams)
        assert not np.any((batch.task_nodes == 0) & batch.task_mask)

    def test_outage_counter_drains_and_cripples(self):
        graph = cycle_graph(4)
        batch, _ = _uniform_batch()
        streams = self._streams(batch.num_replicas)
        NodeOutage(2, residual_factor=0.5).apply_batch(batch, graph, streams)
        np.testing.assert_array_equal(batch.counts[:, 2], 0)
        assert batch.speeds[2] == pytest.approx(0.5)

    def test_churn_counter_conserves_modulo_outcome(self):
        batch, _ = _uniform_batch()
        streams = self._streams(batch.num_replicas)
        before = batch.num_tasks.copy()
        outcome = PoissonChurnEvent(4.0).apply_batch(batch, None, streams)
        np.testing.assert_array_equal(
            batch.num_tasks,
            before + outcome.tasks_added - outcome.tasks_removed,
        )

    def test_churn_counter_weighted_conserves_modulo_outcome(self):
        batch, _ = _weighted_batch()
        streams = self._streams(batch.num_replicas)
        before = batch.total_task_weight.copy()
        outcome = PoissonChurnEvent(3.0, weight=0.5).apply_batch(
            batch, None, streams
        )
        np.testing.assert_allclose(
            batch.total_task_weight,
            before + outcome.weight_added - outcome.weight_removed,
            atol=1e-12,
        )

    def test_counter_events_deterministic(self):
        def run():
            batch, _ = _uniform_batch()
            streams = self._streams(batch.num_replicas, seed=13)
            PoissonChurnEvent(5.0).apply_batch(batch, None, streams)
            LoadShock(0.4, node=0).apply_batch(batch, None, streams)
            return batch.counts.copy()

        np.testing.assert_array_equal(run(), run())

    def test_speed_change_ignores_layout_policy(self):
        batch, _ = _uniform_batch()
        streams = self._streams(batch.num_replicas)
        SpeedChange(1, 2.0).apply_batch(batch, None, streams)
        assert batch.speeds[1] == pytest.approx(2.0)
