"""Tests for Lemma 4.3 (weighted variance bound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import cycle_graph, grid_graph
from repro.model.state import UniformState, WeightedState
from repro.theory.lemmas import lemma_43_variance_check
from repro.utils.rng import make_rng


class TestLemma43:
    def test_holds_on_random_weighted_states(self):
        graph = cycle_graph(8)
        rng = make_rng(17)
        for _ in range(30):
            m = int(rng.integers(10, 200))
            weights = rng.uniform(0.05, 1.0, size=m)
            locations = rng.integers(0, 8, size=m)
            speeds = rng.uniform(1.0, 3.0, size=8)
            state = WeightedState(locations, weights, speeds)
            check = lemma_43_variance_check(state, graph)
            assert check.holds, check.detail

    def test_holds_on_uniform_states(self):
        """w_l = 1 satisfies w^2 <= w with equality; bound still holds."""
        graph = grid_graph(3)
        rng = make_rng(23)
        for _ in range(30):
            counts = rng.integers(0, 60, size=9)
            speeds = rng.uniform(1.0, 2.0, size=9)
            state = UniformState(counts, speeds)
            check = lemma_43_variance_check(state, graph)
            assert check.holds, check.detail

    def test_zero_at_equilibrium(self):
        """No flows => no variance; both sides vanish."""
        graph = cycle_graph(6)
        state = UniformState(np.full(6, 10), np.ones(6))
        check = lemma_43_variance_check(state, graph)
        assert check.holds
        assert check.margin == pytest.approx(0.0, abs=1e-12)

    def test_light_tasks_gain_margin(self):
        """w^2 << w for light tasks: the bound is looser, margin bigger."""
        graph = cycle_graph(6)
        speeds = np.ones(6)
        heavy = WeightedState(
            np.zeros(60, dtype=np.int64), np.full(60, 1.0), speeds
        )
        light = WeightedState(
            np.zeros(600, dtype=np.int64), np.full(600, 0.1), speeds
        )
        # Same total weight and loads -> same flows (RHS), but the light
        # system's variance (LHS) is ~10x smaller.
        heavy_check = lemma_43_variance_check(heavy, graph)
        light_check = lemma_43_variance_check(light, graph)
        assert light_check.margin > heavy_check.margin
