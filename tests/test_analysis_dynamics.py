"""Tests for repro.analysis.dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dynamics import (
    recovery_rounds,
    rolling_violation,
    steady_state_band,
    time_averaged_imbalance,
)
from repro.errors import ValidationError


class TestRecoveryRounds:
    def test_basic_recovery(self):
        satisfied = np.array(
            [[True, True], [False, False], [False, True], [True, True]]
        )
        # Event at round 1: replica 0 recovers at record 3 (2 rounds),
        # replica 1 at record 2 (1 round).
        np.testing.assert_array_equal(
            recovery_rounds(satisfied, 1), [2, 1]
        )

    def test_never_recovered_is_minus_one(self):
        satisfied = np.zeros((5, 3), dtype=bool)
        np.testing.assert_array_equal(
            recovery_rounds(satisfied, 2), [-1, -1, -1]
        )

    def test_event_at_horizon_edge(self):
        satisfied = np.ones((4, 2), dtype=bool)
        np.testing.assert_array_equal(recovery_rounds(satisfied, 3), [-1, -1])

    def test_one_dimensional_input(self):
        satisfied = np.array([False, False, False, True])
        np.testing.assert_array_equal(recovery_rounds(satisfied, 0), [3])

    def test_event_round_validated(self):
        with pytest.raises(ValidationError):
            recovery_rounds(np.zeros((3, 1), dtype=bool), 5)


class TestTimeAveragedImbalance:
    def test_warmup_discards_transient(self):
        values = np.array([[100.0], [100.0], [2.0], [4.0]])
        assert time_averaged_imbalance(values, warmup=2)[0] == pytest.approx(3.0)

    def test_warmup_validated(self):
        with pytest.raises(ValidationError):
            time_averaged_imbalance(np.zeros((3, 1)), warmup=3)


class TestRollingViolation:
    def test_moving_average(self):
        trace = np.array([[0.0], [1.0], [1.0], [0.0]])
        rolled = rolling_violation(trace, window=2)
        np.testing.assert_allclose(rolled[:, 0], [0.5, 1.0, 0.5])

    def test_window_one_is_identity(self):
        trace = np.random.default_rng(0).random((6, 2))
        np.testing.assert_allclose(rolling_violation(trace, 1), trace)

    def test_window_validated(self):
        with pytest.raises(ValidationError):
            rolling_violation(np.zeros((3, 1)), window=4)


class TestSteadyStateBand:
    def test_pools_replicas_and_rounds(self):
        values = np.array([[1.0, 3.0], [2.0, 4.0]])
        band = steady_state_band(values)
        assert band.num_samples == 4
        assert band.median == pytest.approx(2.5)
        assert band.maximum == 4.0

    def test_warmup(self):
        values = np.array([[1000.0], [1.0], [1.0]])
        band = steady_state_band(values, warmup=1)
        assert band.maximum == 1.0
