"""Tests for repro.model.perturbation (deprecated shims over repro.scenarios).

The helpers here are kept as behavior-preserving shims; these tests pin
the legacy contract (uniform-only, same errors, same return values).
"""

from __future__ import annotations

import numpy as np
import pytest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

from repro.errors import ModelError
from repro.model.perturbation import (
    PoissonChurn,
    inject_tasks,
    remove_tasks,
    shock_to_node,
)
from repro.model.state import UniformState, WeightedState


@pytest.fixture
def state():
    return UniformState(np.array([10, 5, 0, 5]), np.ones(4))


class TestInjectTasks:
    def test_targeted_injection(self, state, rng):
        inject_tasks(state, 7, rng, node=2)
        assert state.counts[2] == 7
        assert state.num_tasks == 27

    def test_random_injection_total(self, state, rng):
        inject_tasks(state, 100, rng)
        assert state.num_tasks == 120

    def test_zero_noop(self, state, rng):
        inject_tasks(state, 0, rng)
        assert state.num_tasks == 20

    def test_bad_node(self, state, rng):
        with pytest.raises(ModelError):
            inject_tasks(state, 1, rng, node=9)

    def test_weighted_rejected(self, rng):
        weighted = WeightedState([0], [0.5], [1.0, 1.0])
        with pytest.raises(ModelError):
            inject_tasks(weighted, 1, rng)


class TestRemoveTasks:
    def test_removes_exactly(self, state, rng):
        remove_tasks(state, 6, rng)
        assert state.num_tasks == 14
        assert np.all(state.counts >= 0)

    def test_uniform_over_tasks(self, rng):
        """Removal hits nodes proportionally to their counts."""
        counts = np.array([900, 100])
        removed_from_big = []
        for seed in range(200):
            trial = UniformState(counts.copy(), np.ones(2))
            remove_tasks(trial, 100, np.random.default_rng(seed))
            removed_from_big.append(900 - trial.counts[0])
        mean = float(np.mean(removed_from_big))
        assert mean == pytest.approx(90.0, abs=3.0)

    def test_overremoval_clears(self, state, rng):
        remove_tasks(state, 1000, rng)
        assert state.num_tasks == 0

    def test_empty_noop(self, rng):
        empty = UniformState(np.zeros(3, dtype=np.int64), np.ones(3))
        remove_tasks(empty, 5, rng)
        assert empty.num_tasks == 0


class TestShock:
    def test_full_shock_moves_everything(self, state, rng):
        moved = shock_to_node(state, 1.0, 0, rng)
        assert moved == 10  # everything not already on node 0
        assert state.counts[0] == 20
        assert state.num_tasks == 20

    def test_zero_shock_noop(self, state, rng):
        before = state.counts.copy()
        assert shock_to_node(state, 0.0, 0, rng) == 0
        np.testing.assert_array_equal(state.counts, before)

    def test_partial_shock_conserves(self, state, rng):
        shock_to_node(state, 0.5, 1, rng)
        assert state.num_tasks == 20

    def test_fraction_validated(self, state, rng):
        with pytest.raises(ModelError):
            shock_to_node(state, 1.5, 0, rng)

    def test_node_validated(self, state, rng):
        with pytest.raises(ModelError):
            shock_to_node(state, 0.5, 9, rng)


class TestPoissonChurn:
    def test_stationary_in_expectation(self):
        state = UniformState(np.full(4, 100), np.ones(4))
        churn = PoissonChurn(10.0, seed=1)
        for _ in range(300):
            churn.apply(state)
        # Expected count stays 400; allow a generous random-walk band.
        assert 200 <= state.num_tasks <= 600

    def test_reports_arrivals_departures(self):
        state = UniformState(np.full(4, 50), np.ones(4))
        churn = PoissonChurn(5.0, seed=2)
        arrived, departed = churn.apply(state)
        assert arrived >= 0 and departed >= 0
        assert state.num_tasks == 200 + arrived - departed

    def test_zero_rate_noop(self):
        state = UniformState(np.full(4, 50), np.ones(4))
        churn = PoissonChurn(0.0, seed=3)
        assert churn.apply(state) == (0, 0)
        assert state.num_tasks == 200

    def test_rate_property(self):
        assert PoissonChurn(2.5).rate == 2.5


class TestDeprecation:
    @pytest.mark.filterwarnings("default::DeprecationWarning")
    def test_shims_warn(self, state, rng):
        with pytest.warns(DeprecationWarning, match="repro.scenarios"):
            inject_tasks(state, 1, rng)
        with pytest.warns(DeprecationWarning, match="repro.scenarios"):
            remove_tasks(state, 1, rng)
        with pytest.warns(DeprecationWarning, match="repro.scenarios"):
            shock_to_node(state, 0.1, 0, rng)
        with pytest.warns(DeprecationWarning, match="repro.scenarios"):
            PoissonChurn(1.0, seed=1)
