"""Tests for repro.theory.lemmas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import cycle_graph, grid_graph, path_graph
from repro.model.speeds import granular_speeds, random_integer_speeds
from repro.model.state import UniformState
from repro.theory.lemmas import (
    lemma_310_drop_lower_bound,
    lemma_311_recursion,
    lemma_321_check,
    lemma_322_drop_lower_bound,
    lemma_323_check,
    observation_316_check,
    observation_320_identity_check,
)


def random_state(rng, n=9, max_count=50, s_max=3.0):
    counts = rng.integers(0, max_count, size=n)
    speeds = rng.uniform(1.0, s_max, size=n)
    return UniformState(counts, speeds)


class TestObservation316:
    def test_holds_on_random_states(self, rng):
        for _ in range(40):
            check = observation_316_check(random_state(rng))
            assert check.holds, check.detail

    def test_holds_at_balance(self):
        state = UniformState(np.full(4, 5), np.ones(4))
        assert observation_316_check(state).holds


class TestObservation320:
    def test_identity_on_random_states(self, rng):
        for _ in range(40):
            check = observation_320_identity_check(random_state(rng))
            assert check.holds, check.detail

    def test_identity_with_extreme_speeds(self, rng):
        counts = rng.integers(0, 100, size=5)
        speeds = np.array([1.0, 1.0, 10.0, 1.0, 5.0])
        check = observation_320_identity_check(UniformState(counts, speeds))
        assert check.holds


class TestLemma310Bound:
    def test_value(self):
        # lambda2/(16 Delta s^2) Psi - n/(4 s)
        value = lemma_310_drop_lower_bound(8, 2, 0.5, 1.0, 320.0)
        assert value == pytest.approx(0.5 / 32.0 * 320.0 - 2.0)

    def test_negative_for_small_potential(self):
        assert lemma_310_drop_lower_bound(8, 2, 0.5, 1.0, 0.0) < 0


class TestLemma311:
    def test_recursion_value(self):
        # (1 - 2/gamma) prev + n/(4 smax), 1/gamma = lambda2/(32 Delta s^2)
        value = lemma_311_recursion(100.0, 2, 0.5, 1.0, 8)
        inverse_gamma = 0.5 / 64.0
        assert value == pytest.approx((1 - 2 * inverse_gamma) * 100.0 + 2.0)

    def test_fixed_point_is_stable(self):
        """Iterating the recursion converges to n/(4 s_max) * gamma/2."""
        value = 1e6
        for _ in range(20000):
            value = lemma_311_recursion(value, 2, 0.5, 1.0, 8)
        inverse_gamma = 0.5 / 64.0
        fixed_point = 2.0 / (2 * inverse_gamma)
        assert value == pytest.approx(fixed_point, rel=1e-6)


class TestLemma321:
    def test_integer_speeds(self, rng):
        """With integer speeds (eps = 1) strict edges have extra slack."""
        graph = grid_graph(3)
        for _ in range(20):
            speeds = random_integer_speeds(9, 3, seed=rng)
            counts = rng.integers(0, 50, size=9)
            state = UniformState(counts, speeds)
            check = lemma_321_check(state, graph, granularity=1.0)
            assert check.holds, check.detail

    def test_granular_speeds(self, rng):
        graph = cycle_graph(8)
        for _ in range(20):
            speeds = granular_speeds(8, 3.0, 0.5, seed=rng)
            counts = rng.integers(0, 50, size=8)
            state = UniformState(counts, speeds)
            check = lemma_321_check(state, graph, granularity=0.5)
            assert check.holds, check.detail

    def test_no_strict_edges(self):
        graph = path_graph(2)
        state = UniformState([1, 1], [1.0, 1.0])
        check = lemma_321_check(state, graph, granularity=1.0)
        assert check.holds
        assert check.margin == float("inf")


class TestLemma322Bound:
    def test_value(self):
        # eps^2 / (8 Delta s^3)
        assert lemma_322_drop_lower_bound(2, 2.0, 1.0) == pytest.approx(
            1.0 / (8 * 2 * 8.0)
        )

    def test_granularity_quadratic(self):
        full = lemma_322_drop_lower_bound(4, 1.0, 1.0)
        half = lemma_322_drop_lower_bound(4, 1.0, 0.5)
        assert half == pytest.approx(full / 4.0)


class TestLemma323:
    def test_holds_on_random_states(self, rng):
        for _ in range(40):
            check = lemma_323_check(random_state(rng))
            assert check.holds, check.detail

    def test_holds_at_balance(self):
        state = UniformState(np.full(6, 7), np.ones(6))
        assert lemma_323_check(state).holds
