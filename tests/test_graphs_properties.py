"""Tests for repro.graphs.properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    from_edges,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from repro.graphs.properties import (
    bfs_distances,
    connected_components,
    degree_histogram,
    diameter,
    eccentricity,
    is_bipartite,
    is_connected,
    is_regular,
)


class TestBfsDistances:
    def test_path_distances(self):
        distances = bfs_distances(path_graph(5), 0)
        np.testing.assert_array_equal(distances, [0, 1, 2, 3, 4])

    def test_cycle_distances(self):
        distances = bfs_distances(cycle_graph(6), 0)
        np.testing.assert_array_equal(distances, [0, 1, 2, 3, 2, 1])

    def test_unreachable_marked(self):
        graph = from_edges(4, [(0, 1)])
        distances = bfs_distances(graph, 0)
        assert distances[2] == -1
        assert distances[3] == -1

    def test_bad_source(self):
        with pytest.raises(GraphError):
            bfs_distances(path_graph(3), 5)


class TestDiameter:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(6), 5),
            (cycle_graph(8), 4),
            (cycle_graph(7), 3),
            (complete_graph(5), 1),
            (grid_graph(3), 4),
            (hypercube_graph(4), 4),
            (star_graph(9), 2),
        ],
    )
    def test_known_diameters(self, graph, expected):
        assert diameter(graph) == expected

    def test_disconnected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            diameter(from_edges(3, [(0, 1)]))

    def test_eccentricity_center_vs_leaf(self):
        graph = path_graph(5)
        assert eccentricity(graph, 2) == 2
        assert eccentricity(graph, 0) == 4


class TestConnectivity:
    def test_connected(self):
        assert is_connected(cycle_graph(5))

    def test_disconnected(self):
        assert not is_connected(from_edges(4, [(0, 1), (2, 3)]))

    def test_components(self):
        graph = from_edges(5, [(0, 1), (2, 3)])
        components = connected_components(graph)
        assert sorted(map(sorted, components)) == [[0, 1], [2, 3], [4]]

    def test_single_component(self):
        assert connected_components(complete_graph(4)) == [[0, 1, 2, 3]]


class TestDegreeHistogram:
    def test_star(self):
        histogram = degree_histogram(star_graph(5))
        assert histogram == {1: 4, 4: 1}

    def test_regular(self):
        assert degree_histogram(cycle_graph(6)) == {2: 6}


class TestBipartite:
    def test_even_cycle(self):
        assert is_bipartite(cycle_graph(6))

    def test_odd_cycle(self):
        assert not is_bipartite(cycle_graph(5))

    def test_grid(self):
        assert is_bipartite(grid_graph(4))

    def test_complete(self):
        assert not is_bipartite(complete_graph(3))

    def test_hypercube(self):
        assert is_bipartite(hypercube_graph(4))

    def test_disconnected_bipartite(self):
        assert is_bipartite(from_edges(4, [(0, 1), (2, 3)]))


class TestRegular:
    def test_cycle_regular(self):
        assert is_regular(cycle_graph(5))

    def test_path_not_regular(self):
        assert not is_regular(path_graph(4))
