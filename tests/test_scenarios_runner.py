"""Tests for repro.scenarios.schedule and repro.scenarios.runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocols import SelfishUniformProtocol, SelfishWeightedProtocol
from repro.core.stopping import NashStop, PotentialThresholdStop
from repro.errors import ValidationError
from repro.graphs.generators import cycle_graph, torus_graph
from repro.model.placement import place_weighted_random, random_placement
from repro.model.state import UniformState, WeightedState
from repro.model.tasks import two_class_weights
from repro.scenarios import (
    LoadShock,
    NodeOutage,
    PoissonChurnEvent,
    Schedule,
    ScenarioRunner,
    SpeedChange,
    TaskArrival,
    TaskDeparture,
    at,
    every,
    nash_violation_fraction,
)

from tests.equivalence import (
    assert_scenario_conservation,
    assert_scenario_engines_agree,
)


def _uniform_factory(n, m):
    def factory(rng):
        return UniformState(random_placement(n, m, rng), np.ones(n))

    return factory


def _weighted_factory(n, m):
    weights = two_class_weights(m, heavy_fraction=0.1)

    def factory(rng):
        return WeightedState(place_weighted_random(m, n, rng), weights, np.ones(n))

    return factory


class TestSchedule:
    def test_at_single_round(self):
        entry = at(5, LoadShock(0.5, node=0))
        assert entry.due(5) and not entry.due(4) and not entry.due(6)

    def test_at_multiple_rounds(self):
        entry = at([3, 9], TaskArrival(1))
        assert entry.due(3) and entry.due(9) and not entry.due(6)

    def test_every_with_window(self):
        entry = every(3, TaskDeparture(1), start=6, stop=13)
        fires = [r for r in range(20) if entry.due(r)]
        assert fires == [6, 9, 12]

    def test_events_due_preserves_entry_order(self):
        shock = LoadShock(0.5, node=0)
        churn = PoissonChurnEvent(1.0)
        schedule = Schedule([every(1, churn), at(4, shock)])
        assert schedule.events_due(4) == [churn, shock]
        assert schedule.events_due(3) == [churn]

    def test_event_rounds(self):
        schedule = Schedule([at([4, 8], LoadShock(0.5, node=0))])
        assert schedule.event_rounds("shock", 10) == [4, 8]
        assert schedule.event_rounds("shock", 5) == [4]

    def test_numpy_integers_accepted(self):
        """Round indices routinely come out of numpy arithmetic."""
        entry = at(np.int64(5), LoadShock(0.5, node=0))
        assert entry.due(5)
        assert every(np.int64(2), TaskArrival(1)).due(4)

    def test_validation(self):
        with pytest.raises(ValidationError):
            every(0, TaskArrival(1))
        with pytest.raises(ValidationError):
            at(-1, TaskArrival(1))
        with pytest.raises(ValidationError):
            Schedule([TaskArrival(1)])  # bare event, not an entry


class TestScenarioRunnerScalar:
    def test_shapes_and_engine(self):
        graph = cycle_graph(6)
        runner = ScenarioRunner(
            graph,
            SelfishUniformProtocol(),
            Schedule([every(1, PoissonChurnEvent(1.0))]),
            target=NashStop(),
        )
        state = UniformState(random_placement(6, 60, np.random.default_rng(0)), np.ones(6))
        result = runner.run(state, rounds=12, rng=7)
        assert result.engine == "scalar"
        assert result.psi0.shape == (13, 1)
        assert result.num_replicas == 1
        assert result.rounds_executed == 12
        assert len(result.events) == 12
        assert_scenario_conservation(result)

    def test_empty_schedule_is_pure_simulation(self):
        graph = cycle_graph(6)
        runner = ScenarioRunner(graph, SelfishUniformProtocol())
        state = UniformState(random_placement(6, 60, np.random.default_rng(0)), np.ones(6))
        result = runner.run(state, rounds=10, rng=3)
        assert result.events == []
        np.testing.assert_array_equal(
            result.num_tasks, np.full((11, 1), 60)
        )

    def test_speed_event_changes_loads(self):
        graph = cycle_graph(4)
        runner = ScenarioRunner(
            graph,
            SelfishUniformProtocol(),
            Schedule([at(2, SpeedChange(0, 4.0))]),
        )
        state = UniformState(np.full(4, 10), np.ones(4))
        result = runner.run(state, rounds=4, rng=1)
        assert result.final_state.speeds[0] == 4.0


class TestScenarioRunnerBatch:
    def test_uniform_auto_batches(self):
        graph = torus_graph(3)
        schedule = Schedule(
            [every(1, PoissonChurnEvent(1.0)), at(6, LoadShock(0.8, node=0))]
        )
        runner = ScenarioRunner(
            graph, SelfishUniformProtocol(), schedule, target=NashStop()
        )
        result = runner.run_ensemble(
            _uniform_factory(9, 90), repetitions=8, rounds=15, seed=5
        )
        assert result.engine == "batch"
        assert result.psi0.shape == (16, 8)
        assert_scenario_conservation(result)
        shock = result.events_named("shock")
        assert len(shock) == 1 and shock[0].round_index == 6
        assert np.all(shock[0].tasks_relocated > 0)

    def test_same_seed_bit_determinism(self):
        graph = torus_graph(3)
        schedule = Schedule([every(1, PoissonChurnEvent(2.0))])
        runner = ScenarioRunner(graph, SelfishUniformProtocol(), schedule)

        def run_once():
            return runner.run_ensemble(
                _uniform_factory(9, 90), repetitions=5, rounds=10, seed=17
            )

        first, second = run_once(), run_once()
        np.testing.assert_array_equal(first.num_tasks, second.num_tasks)
        np.testing.assert_array_equal(first.psi0, second.psi0)
        np.testing.assert_array_equal(
            first.final_state.counts, second.final_state.counts
        )

    def test_weighted_pathwise_engines_agree(self):
        graph = cycle_graph(6)
        schedule = Schedule(
            [
                every(2, PoissonChurnEvent(1.0, weight=0.5)),
                at(5, LoadShock(0.5, node=0)),
                at(8, NodeOutage(2, residual_factor=0.5)),
                at(3, TaskArrival(2, node=1, weight=0.25)),
                at(7, TaskDeparture(3)),
            ]
        )
        runner = ScenarioRunner(
            graph, SelfishWeightedProtocol(), schedule, target=NashStop()
        )
        assert_scenario_engines_agree(
            runner,
            _weighted_factory(6, 30),
            repetitions=5,
            rounds=14,
            seed=23,
            pathwise=True,
            conservation_atol=1e-9,
        )

    def test_weighted_compaction_is_transparent(self):
        """Heavy churn grows then compacts the padded stack without
        changing trajectories (scalar comparison stays bit-identical)."""
        graph = cycle_graph(4)
        schedule = Schedule([every(1, PoissonChurnEvent(6.0, weight=0.5))])
        runner = ScenarioRunner(graph, SelfishWeightedProtocol(), schedule)
        assert_scenario_engines_agree(
            runner,
            _weighted_factory(4, 8),
            repetitions=3,
            rounds=60,
            seed=31,
            pathwise=True,
            conservation_atol=1e-9,
        )

    def test_engine_batch_forced_on_unstackable_raises(self):
        graph = cycle_graph(4)
        runner = ScenarioRunner(graph, SelfishUniformProtocol(), Schedule())

        def ragged_factory(rng):
            # Different speed vectors -> unstackable.
            speeds = rng.uniform(1.0, 2.0, 4)
            return UniformState(random_placement(4, 12, rng), speeds)

        with pytest.raises(ValidationError):
            runner.run_ensemble(
                ragged_factory, repetitions=3, rounds=5, seed=1, engine="batch"
            )

    def test_target_satisfied_trace(self):
        graph = torus_graph(3)
        schedule = Schedule([at(10, LoadShock(0.9, node=0))])
        runner = ScenarioRunner(
            graph,
            SelfishUniformProtocol(),
            schedule,
            target=PotentialThresholdStop(1e9, "psi0"),
        )
        result = runner.run_ensemble(
            _uniform_factory(9, 90), repetitions=4, rounds=12, seed=2
        )
        # A sky-high threshold is satisfied every round.
        assert np.all(result.target_satisfied)


class TestUniformLawAgreement:
    @pytest.mark.slow
    def test_uniform_engines_agree_in_law(self):
        """KS agreement of recovery-round distributions under a fixed
        churn + shock schedule (uniform kernels are law-equivalent)."""
        graph = torus_graph(3)
        shock_round = 15
        schedule = Schedule(
            [
                every(1, PoissonChurnEvent(1.0)),
                at(shock_round, LoadShock(0.8, node=0)),
            ]
        )
        from repro.spectral.eigen import algebraic_connectivity
        from repro.theory.constants import psi_critical

        lambda2 = algebraic_connectivity(graph)
        threshold = 4.0 * psi_critical(9, graph.max_degree, lambda2, 1.0)
        runner = ScenarioRunner(
            graph,
            SelfishUniformProtocol(),
            schedule,
            target=PotentialThresholdStop(threshold, "psi0"),
        )
        assert_scenario_engines_agree(
            runner,
            _uniform_factory(9, 16 * 9),
            repetitions=120,
            rounds=60,
            seed=41,
            pathwise=False,
            shock_round=shock_round,
        )


class TestNashViolationFraction:
    def test_balanced_state_has_no_violations(self):
        graph = cycle_graph(4)
        loads = np.full((2, 4), 5.0)
        np.testing.assert_array_equal(
            nash_violation_fraction(loads, np.ones(4), graph), np.zeros(2)
        )

    def test_skewed_state_has_violations(self):
        graph = cycle_graph(4)
        loads = np.array([[40.0, 0.0, 0.0, 0.0]])
        fraction = nash_violation_fraction(loads, np.ones(4), graph)
        assert 0.0 < fraction[0] <= 1.0


class TestCounterScenarioPolicy:
    """rng_policy='counter' scenario runs: law-level engine agreement."""

    def _uniform_runner(self, n=9):
        graph = torus_graph(3)
        from repro.spectral.eigen import algebraic_connectivity
        from repro.theory.constants import psi_critical

        lambda2 = algebraic_connectivity(graph)
        threshold = 4.0 * psi_critical(n, graph.max_degree, lambda2, 1.0)
        schedule = Schedule(
            [
                every(1, PoissonChurnEvent(1.0)),
                at(20, LoadShock(0.8, node=0)),
            ]
        )
        return ScenarioRunner(
            graph,
            SelfishUniformProtocol(),
            schedule,
            target=PotentialThresholdStop(threshold, "psi0"),
        )

    def test_counter_run_deterministic_and_conserving(self):
        runner = self._uniform_runner()

        def run():
            result = runner.run_ensemble(
                _uniform_factory(9, 16 * 9),
                repetitions=16,
                rounds=40,
                seed=5,
                engine="batch",
                rng_policy="counter",
            )
            assert_scenario_conservation(result)
            return result.psi0, result.num_tasks, result.target_satisfied

        first = run()
        second = run()
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_counter_weighted_conserves_exactly(self):
        n, m = 8, 64
        schedule = Schedule(
            [
                every(1, PoissonChurnEvent(1.0, weight=0.5)),
                at(10, LoadShock(0.5, node=0)),
                at(15, TaskArrival(5, weight=0.5)),
                at(18, TaskDeparture(7)),
            ]
        )
        runner = ScenarioRunner(
            cycle_graph(n), SelfishWeightedProtocol(), schedule, target=NashStop()
        )
        result = runner.run_ensemble(
            _weighted_factory(n, m),
            repetitions=20,
            rounds=30,
            seed=9,
            engine="batch",
            rng_policy="counter",
        )
        assert_scenario_conservation(result, atol=1e-9)

    def test_counter_rejects_scalar_engine(self):
        runner = self._uniform_runner()
        with pytest.raises(ValidationError):
            runner.run_ensemble(
                _uniform_factory(9, 16 * 9),
                repetitions=2,
                rounds=5,
                seed=1,
                engine="scalar",
                rng_policy="counter",
            )

    @pytest.mark.slow
    def test_counter_uniform_recovery_matches_scalar_in_law(self):
        from tests.equivalence import assert_counter_scenario_agrees

        runner = self._uniform_runner()
        assert_counter_scenario_agrees(
            runner,
            _uniform_factory(9, 16 * 9),
            repetitions=120,
            rounds=60,
            seed=41,
            shock_round=20,
        )

    @pytest.mark.slow
    def test_counter_weighted_final_potentials_match_scalar_in_law(self):
        from tests.equivalence import assert_counter_scenario_agrees

        n, m = 8, 64
        schedule = Schedule(
            [
                every(1, PoissonChurnEvent(1.0, weight=0.5)),
                at(20, LoadShock(0.5, node=0)),
            ]
        )
        runner = ScenarioRunner(
            cycle_graph(n), SelfishWeightedProtocol(), schedule, target=NashStop()
        )
        assert_counter_scenario_agrees(
            runner,
            _weighted_factory(n, m),
            repetitions=120,
            rounds=60,
            seed=41,
            conservation_atol=1e-9,
        )
