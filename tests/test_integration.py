"""End-to-end integration tests: full runs reproducing paper behaviour.

These tests exercise multiple modules together and assert the paper's
headline claims at small scale: convergence to (approximate) equilibria
within the theorem bounds, equilibrium absorption, speed-proportional
balancing, and the potential-drop machinery along real trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.theory import (
    epsilon_from_delta,
    gamma_factor,
    psi_critical,
    theorem11_m_threshold,
    theorem11_round_bound,
    theorem12_round_bound,
)


class TestUniformEndToEnd:
    @pytest.mark.parametrize("family_name", ["complete", "ring", "torus", "hypercube"])
    def test_reaches_exact_nash(self, family_name):
        family = repro.get_family(family_name)
        graph = family.make(9)
        n = graph.num_vertices
        state = repro.UniformState(
            repro.all_on_one_placement(n, 20 * n), repro.uniform_speeds(n)
        )
        result = repro.run_protocol(
            graph,
            repro.SelfishUniformProtocol(),
            state,
            stopping=repro.NashStop(),
            max_rounds=100_000,
            seed=11,
        )
        assert result.converged
        assert repro.is_nash(state, graph)

    def test_theorem11_bound_respected(self):
        """Hitting time of Psi_0 <= 4 psi_c lands under the explicit bound."""
        graph = repro.torus_graph(3)
        n = graph.num_vertices
        m = 8 * n * n
        quantities = repro.graph_quantities(graph)
        bound = theorem11_round_bound(quantities, m, 1.0)
        threshold = 4.0 * psi_critical(n, graph.max_degree, quantities.lambda2, 1.0)
        for seed in range(3):
            state = repro.UniformState(
                repro.all_on_one_placement(n, m), repro.uniform_speeds(n)
            )
            result = repro.run_protocol(
                graph,
                repro.SelfishUniformProtocol(),
                state,
                stopping=repro.PotentialThresholdStop(threshold, "psi0"),
                max_rounds=int(2 * bound),
                seed=seed,
            )
            assert result.converged
            assert result.stop_round <= bound

    def test_lemma_317_epsilon_nash_property(self):
        """Above the m threshold, Psi_0 <= 4 psi_c implies an eps-NE."""
        graph = repro.torus_graph(3)
        n = graph.num_vertices
        delta = 2.0
        m = int(np.ceil(theorem11_m_threshold(n, float(n), 1.0, delta)))
        threshold = 4.0 * psi_critical(
            n, graph.max_degree, repro.algebraic_connectivity(graph), 1.0
        )
        state = repro.UniformState(
            repro.all_on_one_placement(n, m), repro.uniform_speeds(n)
        )
        result = repro.run_protocol(
            graph,
            repro.SelfishUniformProtocol(),
            state,
            stopping=repro.PotentialThresholdStop(threshold, "psi0"),
            max_rounds=100_000,
            seed=5,
        )
        assert result.converged
        assert repro.is_epsilon_nash(state, graph, epsilon_from_delta(delta))

    def test_theorem12_bound_with_granular_speeds(self):
        graph = repro.cycle_graph(6)
        speeds = repro.granular_speeds(6, 2.0, 0.5, seed=3)
        granularity = repro.speed_granularity(speeds)
        alpha = repro.default_alpha(float(speeds.max()), granularity)
        quantities = repro.graph_quantities(graph)
        bound = theorem12_round_bound(quantities, float(speeds.max()), granularity)
        state = repro.UniformState(repro.adversarial_placement(speeds, 48), speeds)
        result = repro.run_protocol(
            graph,
            repro.SelfishUniformProtocol(alpha=alpha),
            state,
            stopping=repro.NashStop(),
            max_rounds=int(min(bound, 500_000)),
            seed=4,
        )
        assert result.converged
        assert result.stop_round <= bound

    def test_speed_proportional_equilibrium(self):
        """At NE, loads equalize: counts split proportionally to speeds."""
        graph = repro.complete_graph(6)
        speeds = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
        m = 1200
        state = repro.UniformState(repro.all_on_one_placement(6, m), speeds)
        result = repro.run_protocol(
            graph,
            repro.SelfishUniformProtocol(),
            state,
            stopping=repro.NashStop(),
            max_rounds=100_000,
            seed=9,
        )
        assert result.converged
        ideal = m * speeds / speeds.sum()
        # At NE every load is within 1/s of the average: counts within ~s_i.
        assert np.all(np.abs(state.counts - ideal) <= speeds + 1.0)

    def test_potential_monotone_in_expectation_along_run(self):
        """Along a real trajectory, E[Psi_0 | state] <= Psi_0 + noise term."""
        graph = repro.torus_graph(3)
        n = graph.num_vertices
        state = repro.UniformState(
            repro.all_on_one_placement(n, 500), repro.uniform_speeds(n)
        )
        protocol = repro.SelfishUniformProtocol()
        rng = np.random.default_rng(2)
        for _ in range(60):
            before = repro.psi0_potential(state)
            from repro.core.drops import expected_psi0_after_round

            conditional = expected_psi0_after_round(state, graph)
            assert conditional <= before + n / 4.0 + 1e-9
            protocol.execute_round(state, graph, rng)


class TestWeightedEndToEnd:
    def test_algorithm2_reaches_threshold_state(self):
        graph = repro.cycle_graph(8)
        speeds = repro.two_class_speeds(8, 0.25, 2.0)
        weights = repro.random_weights(500, 0.3, 1.0, seed=1)
        state = repro.WeightedState(
            repro.place_weighted_all_on_one(500, 0), weights, speeds
        )
        result = repro.run_protocol(
            graph,
            repro.SelfishWeightedProtocol(),
            state,
            stopping=repro.NashStop(),
            max_rounds=100_000,
            seed=2,
        )
        assert result.converged
        assert repro.is_nash(state, graph)

    def test_weighted_uniform_weights_match_uniform_protocol_target(self):
        """Algorithm 2 with all weights 1 lands in the same NE set."""
        graph = repro.cycle_graph(6)
        speeds = repro.uniform_speeds(6)
        m = 120
        weights = repro.uniform_weights(m)
        state = repro.WeightedState(
            repro.place_weighted_all_on_one(m, 0), weights, speeds
        )
        result = repro.run_protocol(
            graph,
            repro.SelfishWeightedProtocol(),
            state,
            stopping=repro.NashStop(),
            max_rounds=100_000,
            seed=3,
        )
        assert result.converged
        counts = np.bincount(state.task_nodes, minlength=6)
        uniform_state = repro.UniformState(counts, speeds)
        assert repro.is_nash(uniform_state, graph)

    def test_per_task_baseline_reaches_weighted_exact_nash_on_path(self):
        graph = repro.path_graph(3)
        weights = repro.random_weights(60, 0.4, 1.0, seed=5)
        state = repro.WeightedState(
            repro.place_weighted_all_on_one(60, 0), weights, repro.uniform_speeds(3)
        )
        result = repro.run_protocol(
            graph,
            repro.PerTaskThresholdProtocol(),
            state,
            stopping=repro.WeightedExactNashStop(),
            max_rounds=200_000,
            seed=6,
        )
        assert result.converged
        assert repro.is_weighted_exact_nash(state, graph)


class TestDecayEnvelope:
    def test_mean_trace_respects_lemma_313(self):
        """Averaged Psi_0 decays at least at the (1 - 1/gamma) rate."""
        graph = repro.torus_graph(3)
        n = graph.num_vertices
        m = 8 * n * n
        lambda2 = repro.algebraic_connectivity(graph)
        gamma = gamma_factor(graph.max_degree, lambda2, 1.0)
        psi_c = psi_critical(n, graph.max_degree, lambda2, 1.0)
        horizon = 60
        traces = []
        for seed in range(6):
            state = repro.UniformState(
                repro.all_on_one_placement(n, m), repro.uniform_speeds(n)
            )
            result = repro.run_protocol(
                graph,
                repro.SelfishUniformProtocol(),
                state,
                max_rounds=horizon,
                seed=seed,
                record=True,
            )
            traces.append(result.trace.psi0)
        mean_trace = np.mean(np.stack(traces), axis=0)
        envelope = 1.0 - 1.0 / gamma
        above = mean_trace >= psi_c
        for t in range(1, int(np.argmin(above)) if not above.all() else horizon):
            assert mean_trace[t] <= envelope * mean_trace[t - 1] * 1.05 + 1e-9
