"""Tests for repro.spectral.inner_product (Definition 1.11, Lemma 1.12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpeedError
from repro.spectral.inner_product import (
    project_out_speed_component,
    s_dot,
    s_norm,
    s_orthogonal,
)


class TestSDot:
    def test_uniform_speeds_is_standard_dot(self, rng):
        x = rng.normal(size=6)
        y = rng.normal(size=6)
        assert s_dot(x, y, np.ones(6)) == pytest.approx(float(x @ y))

    def test_explicit_value(self):
        x = np.array([2.0, 4.0])
        y = np.array([1.0, 1.0])
        speeds = np.array([2.0, 4.0])
        assert s_dot(x, y, speeds) == pytest.approx(2.0 / 2.0 + 4.0 / 4.0)

    def test_symmetry(self, rng):
        """Lemma 1.12 (1)."""
        x, y = rng.normal(size=5), rng.normal(size=5)
        speeds = rng.uniform(1.0, 3.0, size=5)
        assert s_dot(x, y, speeds) == pytest.approx(s_dot(y, x, speeds))

    def test_linearity(self, rng):
        """Lemma 1.12 (2)."""
        x1, x2, y = rng.normal(size=5), rng.normal(size=5), rng.normal(size=5)
        speeds = rng.uniform(1.0, 3.0, size=5)
        a, b = 2.5, -1.5
        assert s_dot(a * x1 + b * x2, y, speeds) == pytest.approx(
            a * s_dot(x1, y, speeds) + b * s_dot(x2, y, speeds)
        )

    def test_positive_definite(self, rng):
        """Lemma 1.12 (3)."""
        speeds = rng.uniform(1.0, 3.0, size=5)
        x = rng.normal(size=5)
        assert s_dot(x, x, speeds) > 0
        assert s_dot(np.zeros(5), np.zeros(5), speeds) == 0.0

    def test_cauchy_schwarz(self, rng):
        for _ in range(20):
            x, y = rng.normal(size=6), rng.normal(size=6)
            speeds = rng.uniform(1.0, 4.0, size=6)
            lhs = s_dot(x, y, speeds) ** 2
            rhs = s_dot(x, x, speeds) * s_dot(y, y, speeds)
            assert lhs <= rhs + 1e-9

    def test_non_positive_speeds_rejected(self):
        with pytest.raises(SpeedError):
            s_dot([1.0], [1.0], [0.0])


class TestSNorm:
    def test_norm_squared_is_self_dot(self, rng):
        x = rng.normal(size=5)
        speeds = rng.uniform(1.0, 2.0, size=5)
        assert s_norm(x, speeds) ** 2 == pytest.approx(s_dot(x, x, speeds))

    def test_zero_vector(self):
        assert s_norm(np.zeros(4), np.ones(4)) == 0.0


class TestSOrthogonal:
    def test_detects_orthogonality(self):
        speeds = np.array([1.0, 2.0])
        # <x, y>_S = x1 y1 / 1 + x2 y2 / 2 = 0 for x=(1, 2), y=(1, -1).
        assert s_orthogonal([1.0, 2.0], [1.0, -1.0], speeds)

    def test_detects_non_orthogonality(self):
        assert not s_orthogonal([1.0, 0.0], [1.0, 0.0], [1.0, 1.0])

    def test_deviation_orthogonal_to_speeds(self, rng):
        """e sums to zero <=> <e, s>_S = 0 (used by Lemma 3.10's proof)."""
        speeds = rng.uniform(1.0, 3.0, size=7)
        e = rng.normal(size=7)
        e -= e.mean()  # now sums to zero
        assert s_orthogonal(e, speeds, speeds)


class TestProjection:
    def test_result_sums_to_zero(self, rng):
        speeds = rng.uniform(1.0, 3.0, size=6)
        x = rng.normal(size=6) * 10
        projected = project_out_speed_component(x, speeds)
        assert float(projected.sum()) == pytest.approx(0.0, abs=1e-9)

    def test_result_s_orthogonal_to_speeds(self, rng):
        speeds = rng.uniform(1.0, 3.0, size=6)
        projected = project_out_speed_component(rng.normal(size=6), speeds)
        assert s_orthogonal(projected, speeds, speeds)

    def test_idempotent(self, rng):
        speeds = rng.uniform(1.0, 3.0, size=6)
        once = project_out_speed_component(rng.normal(size=6), speeds)
        twice = project_out_speed_component(once, speeds)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_matches_deviation_structure(self, rng):
        """Projecting a task vector yields exactly e = w - (W/S) s."""
        speeds = rng.uniform(1.0, 3.0, size=6)
        w = rng.integers(0, 50, size=6).astype(float)
        expected = w - w.sum() / speeds.sum() * speeds
        np.testing.assert_allclose(
            project_out_speed_component(w, speeds), expected, atol=1e-12
        )
