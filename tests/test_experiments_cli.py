"""End-to-end tests for the ``python -m repro.experiments`` CLI.

Covers the exit-code contract (0 pass / 1 fail / 2 usage or unknown id),
artifact writing (``--json`` / ``--csv`` / ``--markdown``), the
experiment-namespaced CSV filenames, and ``--workers`` determinism
(byte-identical JSON at any worker count).
"""

from __future__ import annotations

import json

import pytest

import repro.experiments.__main__ as cli
from repro.experiments.registry import ExperimentResult
from repro.utils.tables import Table


def make_result(experiment_id, passed=True, series_name=None):
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"stub {experiment_id}",
        passed=passed,
        data={"value": 1},
    )
    table = Table(headers=["k"], title="stub table")
    table.add_row([1])
    result.tables = [table]
    if series_name is not None:
        result.series[series_name] = {"x": [1, 2], "y": [3.0, 4.0]}
    return result


@pytest.fixture
def stub_cli(monkeypatch):
    """Replace the CLI's registry hooks with cheap deterministic stubs."""
    results = {
        "stub-pass": make_result("stub-pass", series_name="curve"),
        "stub-fail": make_result("stub-fail", passed=False, series_name="curve"),
    }

    def fake_run(
        experiment_id,
        quick=True,
        seed=0,
        workers=None,
        rng_policy="spawned",
        shard_size=None,
        target_ci=None,
        trace=None,
        workload=None,
        backend="numpy",
    ):
        from repro.experiments.registry import run_experiment

        if experiment_id not in results:
            return run_experiment(
                experiment_id,
                quick=quick,
                seed=seed,
                workers=workers,
                rng_policy=rng_policy,
                shard_size=shard_size,
                target_ci=target_ci,
                trace=trace,
                workload=workload,
                backend=backend,
            )
        return results[experiment_id]

    monkeypatch.setattr(cli, "available_experiments", lambda: sorted(results))
    monkeypatch.setattr(cli, "run_experiment", fake_run)
    return results


class TestExitCodes:
    def test_list_exits_zero(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1-weighted" in out
        assert "table1-exact" in out

    def test_unknown_id_exits_two_with_stderr_message(self, capsys):
        code = cli.main(["run", "no-such-experiment"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown experiment" in captured.err
        assert "available" in captured.err
        assert "table1-weighted" in captured.err
        assert "Traceback" not in captured.err

    def test_run_pass_exits_zero(self, stub_cli, capsys):
        assert cli.main(["run", "stub-pass"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_run_fail_exits_one(self, stub_cli, capsys):
        assert cli.main(["run", "stub-fail"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_all_runs_every_registered_id(self, stub_cli, capsys):
        assert cli.main(["all"]) == 1  # stub-fail drags the verdict down
        out = capsys.readouterr().out
        assert "stub-pass" in out
        assert "stub-fail" in out

    def test_workers_zero_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["run", "table1-weighted", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err


class TestArtifacts:
    def test_json_markdown_csv(self, stub_cli, tmp_path, capsys):
        json_path = tmp_path / "out.json"
        markdown_path = tmp_path / "report.md"
        csv_dir = tmp_path / "series"
        code = cli.main(
            [
                "run",
                "stub-pass",
                "--json",
                str(json_path),
                "--markdown",
                str(markdown_path),
                "--csv",
                str(csv_dir),
            ]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload == {"stub-pass": {"passed": True, "value": 1}}
        assert "### `stub-pass`" in markdown_path.read_text()
        csv_file = csv_dir / "stub-pass__curve.csv"
        assert csv_file.exists()
        assert csv_file.read_text().splitlines()[0] == "x,y"

    def test_csv_files_namespaced_per_experiment(self, stub_cli, tmp_path, capsys):
        """Two experiments sharing a series name must not collide."""
        csv_dir = tmp_path / "series"
        code = cli.main(["all", "--csv", str(csv_dir)])
        capsys.readouterr()
        assert code == 1
        names = sorted(path.name for path in csv_dir.glob("*.csv"))
        assert names == ["stub-fail__curve.csv", "stub-pass__curve.csv"]
        # Both series survived intact (no overwrite).
        for name in names:
            assert (csv_dir / name).read_text().splitlines() == [
                "x,y",
                "1,3.0",
                "2,4.0",
            ]

    def test_markdown_appends(self, stub_cli, tmp_path, capsys):
        markdown_path = tmp_path / "report.md"
        markdown_path.write_text("# Existing\n")
        assert cli.main(["run", "stub-pass", "--markdown", str(markdown_path)]) == 0
        capsys.readouterr()
        text = markdown_path.read_text()
        assert text.startswith("# Existing")
        assert "### `stub-pass`" in text


class TestWorkersDeterminism:
    def test_weighted_sweep_json_identical_across_workers(
        self, tmp_path, capsys
    ):
        """--workers {1,2} produce identical measurement artifacts.

        The ``run_meta`` record is the one field that (by design)
        differs: it self-describes the invocation's effective worker
        count and rng policy, so a fallen-back ``--workers`` is visible
        in the artifact itself.
        """
        payloads = {}
        for workers in ("1", "2"):
            json_path = tmp_path / f"workers{workers}.json"
            code = cli.main(
                [
                    "run",
                    "table1-weighted",
                    "--workers",
                    workers,
                    "--json",
                    str(json_path),
                ]
            )
            assert code == 0
            payloads[workers] = json.loads(json_path.read_text())
        capsys.readouterr()
        meta_one = payloads["1"]["table1-weighted"].pop("run_meta")
        meta_two = payloads["2"]["table1-weighted"].pop("run_meta")
        assert payloads["1"] == payloads["2"]
        assert meta_one["workers_effective"] == 1
        assert meta_two["workers_effective"] == 2
        assert meta_one["rng_policy_effective"] == "spawned"
        payload = payloads["1"]
        assert payload["table1-weighted"]["passed"] is True
        assert set(payload["table1-weighted"]["fits"]) == {"ring", "torus"}


class TestRngFlag:
    def test_rng_rejects_unknown_policy(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["run", "table1-weighted", "--rng", "philox"])
        assert excinfo.value.code == 2
        assert "--rng" in capsys.readouterr().err

    def test_rng_counter_threads_to_artifact(self, tmp_path, capsys):
        """--rng counter runs end-to-end and self-describes in run_meta."""
        json_path = tmp_path / "counter.json"
        code = cli.main(
            [
                "run",
                "robustness",
                "--rng",
                "counter",
                "--json",
                str(json_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(json_path.read_text())
        meta = payload["robustness"]["run_meta"]
        assert meta["rng_policy_requested"] == "counter"
        assert meta["rng_policy_effective"] == "counter"

    def test_rng_counter_deterministic_artifacts(self, tmp_path, capsys):
        """Two --rng counter invocations produce identical measurements.

        ``run_meta`` is stripped before comparing: it carries the
        per-cell wall-clock record, the one artifact field that
        legitimately differs between otherwise identical runs.
        """
        outputs = []
        for tag in ("a", "b"):
            json_path = tmp_path / f"counter-{tag}.json"
            code = cli.main(
                [
                    "run",
                    "table1-weighted",
                    "--rng",
                    "counter",
                    "--json",
                    str(json_path),
                ]
            )
            assert code in (0, 1)  # quick-fit verdict is noise-sensitive
            payload = json.loads(json_path.read_text())
            payload["table1-weighted"].pop("run_meta")
            outputs.append(payload)
        capsys.readouterr()
        assert outputs[0] == outputs[1]


class TestTopLevelEntryPoint:
    def test_list_prints_ids_one_per_line(self, capsys):
        import repro.__main__ as top

        assert top.main(["--list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert "workloads-traffic" in lines
        assert "table1-weighted" in lines
        assert lines == sorted(lines)
        assert all("\t" not in line and " " not in line for line in lines)

    def test_no_arguments_prints_help_and_exits_zero(self, capsys):
        import repro.__main__ as top

        assert top.main([]) == 0
        out = capsys.readouterr().out
        assert "usage: python -m repro" in out
        assert "--list" in out


class TestSeedValidation:
    def test_negative_seed_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["run", "table1-weighted", "--seed", "-3"])
        assert excinfo.value.code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_non_integer_seed_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["run", "table1-weighted", "--seed", "not-a-number"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err


class TestWorkloadFlags:
    def test_missing_trace_file_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(
                [
                    "run",
                    "workloads-traffic",
                    "--trace",
                    str(tmp_path / "nope.jsonl"),
                ]
            )
        assert excinfo.value.code == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_workload_exits_two(self, capsys):
        code = cli.main(
            ["run", "workloads-traffic", "--workload", "tidal-wave"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown workload" in captured.err

    def test_trace_replay_runs_and_passes(self, tmp_path, capsys):
        from repro.workloads import build_workload, save_trace

        trace_path = tmp_path / "small.jsonl"
        save_trace(
            build_workload(
                "mmpp", num_nodes=6, horizon=15, seed=3, initial_tasks=24
            ),
            trace_path,
        )
        code = cli.main(
            ["run", "workloads-traffic", "--trace", str(trace_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "file" in out  # the loaded-trace cell reports workload=file
