"""Tests for repro.utils.validation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_array_1d,
    check_in_range,
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan, math.inf])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError, match="x"):
            check_positive(bad, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    @pytest.mark.parametrize("bad", [-0.1, math.nan, -math.inf])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_non_negative(bad, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.nan])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_probability(bad, "p")


class TestCheckInRange:
    def test_closed_interval(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        assert check_in_range(2.0, "x", 1.0, 2.0) == 2.0

    def test_open_ends(self):
        with pytest.raises(ValidationError):
            check_in_range(1.0, "x", 1.0, 2.0, low_open=True)
        with pytest.raises(ValidationError):
            check_in_range(2.0, "x", 1.0, 2.0, high_open=True)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_in_range(math.nan, "x", 0.0, 1.0)

    def test_error_mentions_interval(self):
        with pytest.raises(ValidationError, match=r"\(0\.0, 1\.0\]"):
            check_in_range(0.0, "x", 0.0, 1.0, low_open=True)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer(5, "n") == 5

    def test_accepts_numpy_int(self):
        assert check_integer(np.int64(5), "n") == 5

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_integer(True, "n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_integer(5.0, "n")

    def test_minimum_enforced(self):
        with pytest.raises(ValidationError):
            check_integer(0, "n", minimum=1)


class TestCheckArray1d:
    def test_coerces_list(self):
        result = check_array_1d([1, 2, 3], "v")
        assert result.dtype == np.float64
        np.testing.assert_array_equal(result, [1.0, 2.0, 3.0])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_array_1d([[1, 2]], "v")

    def test_length_enforced(self):
        with pytest.raises(ValidationError):
            check_array_1d([1, 2], "v", length=3)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_array_1d([1.0, math.nan], "v")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_array_1d([1.0, math.inf], "v")


class TestCheckSameLength:
    def test_equal_ok(self):
        check_same_length([1, 2], [3, 4], "a and b")

    def test_unequal_raises(self):
        with pytest.raises(ValidationError, match="a and b"):
            check_same_length([1], [2, 3], "a and b")
