"""Tests for the parallel sweep executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.experiments._common import (
    WEIGHTED_SWEEP_QUICK,
    FamilyMeasurement,
    VariantMeasurement,
    measure_variant_threshold_time,
)
from repro.experiments.executor import (
    MEASUREMENT_KINDS,
    CellSpec,
    execute_cells,
    group_by_family,
    run_cell,
    sweep_specs,
)
from repro.experiments.registry import (
    ExperimentResult,
    _REGISTRY,
    register_experiment,
    run_experiment,
)


WEIGHTED_SPECS = sweep_specs(
    "weighted", WEIGHTED_SWEEP_QUICK, m_factor=8.0, repetitions=2, seed=5
)


class TestSweepSpecs:
    def test_family_major_order(self):
        expected = [
            (family, n)
            for family, sizes in WEIGHTED_SWEEP_QUICK.items()
            for n in sizes
        ]
        assert [(s.family, s.n) for s in WEIGHTED_SPECS] == expected

    def test_shared_scalars(self):
        for spec in WEIGHTED_SPECS:
            assert spec.kind == "weighted"
            assert spec.m_factor == 8.0
            assert spec.repetitions == 2
            assert spec.seed == 5
            assert spec.params == ()

    def test_params_sorted_and_hashable(self):
        [spec] = sweep_specs(
            "weighted-variant",
            {"ring": [8]},
            m_factor=2.0,
            repetitions=1,
            seed=1,
            variant="flow",
            engine="auto",
        )
        assert spec.params == (("engine", "auto"), ("variant", "flow"))
        hash(spec)  # specs must stay usable as dict keys / picklable


class TestRunCell:
    def test_known_kinds_cover_all_measurements(self):
        assert set(MEASUREMENT_KINDS) == {
            "approx",
            "exact",
            "weighted",
            "weighted-variant",
            "scenario-recovery",
            "shock-recovery",
            "churn-band",
        }

    def test_runs_weighted_cell(self):
        cell = run_cell(WEIGHTED_SPECS[0])
        assert isinstance(cell, FamilyMeasurement)
        assert cell.family == WEIGHTED_SPECS[0].family
        assert cell.num_repetitions == 2

    def test_variant_cell_forwards_params(self):
        [spec] = sweep_specs(
            "weighted-variant",
            {"ring": [8]},
            m_factor=10.0,
            repetitions=2,
            seed=3,
            variant="per-task",
            max_rounds=5_000,
        )
        cell = run_cell(spec)
        assert isinstance(cell, VariantMeasurement)
        assert cell.variant == "per-task"
        direct = measure_variant_threshold_time(
            "ring", 8, 10.0, repetitions=2, seed=3,
            variant="per-task", max_rounds=5_000,
        )
        assert cell.label == direct.label == "[6]-style per-task"
        assert cell.engine == direct.engine
        assert cell.num_converged == direct.num_converged
        np.testing.assert_array_equal(cell.median_rounds, direct.median_rounds)

    def test_unknown_kind_rejected(self):
        spec = CellSpec("bogus", "ring", 8, 1.0, 1, 1)
        with pytest.raises(ValidationError, match="unknown measurement kind"):
            run_cell(spec)


class TestExecuteCells:
    def test_serial_matches_pool(self):
        serial = execute_cells(WEIGHTED_SPECS, workers=None)
        pooled = execute_cells(WEIGHTED_SPECS, workers=2)
        assert serial == pooled

    def test_workers_one_is_serial_reference(self):
        assert execute_cells(WEIGHTED_SPECS, workers=1) == execute_cells(
            WEIGHTED_SPECS, workers=None
        )

    def test_order_preserved(self):
        cells = execute_cells(WEIGHTED_SPECS, workers=2)
        assert [(c.family, c.n) for c in cells] == [
            (s.family, s.n) for s in WEIGHTED_SPECS
        ]

    def test_empty_spec_list(self):
        assert execute_cells([], workers=4) == []

    def test_invalid_workers(self):
        with pytest.raises(ValidationError, match="workers"):
            execute_cells(WEIGHTED_SPECS, workers=0)

    def test_unknown_kind_rejected_before_fanout(self):
        bad = CellSpec("bogus", "ring", 8, 1.0, 1, 1)
        with pytest.raises(ValidationError, match="unknown measurement kind"):
            execute_cells([bad], workers=4)


class TestGroupByFamily:
    def test_groups_preserve_order(self):
        results = [f"{s.family}:{s.n}" for s in WEIGHTED_SPECS]
        grouped = group_by_family(WEIGHTED_SPECS, results)
        assert list(grouped) == list(WEIGHTED_SWEEP_QUICK)
        for family, sizes in WEIGHTED_SWEEP_QUICK.items():
            assert grouped[family] == [f"{family}:{n}" for n in sizes]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="results"):
            group_by_family(WEIGHTED_SPECS, ["only-one"])


class TestRegistryWorkersPassThrough:
    def test_legacy_runner_without_workers_keyword(self):
        """A plain (quick, seed) runner still works under workers=N."""
        experiment_id = "_test-legacy-no-workers"
        calls = []

        @register_experiment(experiment_id)
        def legacy(quick, seed):
            calls.append((quick, seed))
            return ExperimentResult(experiment_id=experiment_id, title="t")

        try:
            result = run_experiment(experiment_id, quick=True, workers=4)
            assert result.experiment_id == experiment_id
            assert calls == [(True, 20120716)]
        finally:
            _REGISTRY.pop(experiment_id, None)

    def test_workers_forwarded_to_aware_runner(self):
        experiment_id = "_test-workers-aware"
        seen = {}

        @register_experiment(experiment_id)
        def aware(quick, seed, workers=None):
            seen["workers"] = workers
            return ExperimentResult(experiment_id=experiment_id, title="t")

        try:
            run_experiment(experiment_id, workers=3)
            assert seen["workers"] == 3
            run_experiment(experiment_id)
            assert seen["workers"] is None
        finally:
            _REGISTRY.pop(experiment_id, None)

    def test_sweep_experiment_identical_at_any_worker_count(self):
        serial = run_experiment("table1-weighted", quick=True, seed=99)
        pooled = run_experiment("table1-weighted", quick=True, seed=99, workers=2)
        assert serial.passed == pooled.passed
        assert serial.data == pooled.data
        assert serial.series == pooled.series
        rendered = [table.render() for table in serial.tables]
        assert rendered == [table.render() for table in pooled.tables]
