"""Tests for the parallel sweep executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.experiments._common import (
    WEIGHTED_SWEEP_QUICK,
    FamilyMeasurement,
    VariantMeasurement,
    measure_variant_threshold_time,
)
from repro.experiments.executor import (
    MEASUREMENT_KINDS,
    CellSpec,
    execute_cells,
    group_by_family,
    run_cell,
    sweep_specs,
)
from repro.experiments.registry import (
    ExperimentResult,
    _REGISTRY,
    register_experiment,
    run_experiment,
)


WEIGHTED_SPECS = sweep_specs(
    "weighted", WEIGHTED_SWEEP_QUICK, m_factor=8.0, repetitions=2, seed=5
)


class TestSweepSpecs:
    def test_family_major_order(self):
        expected = [
            (family, n)
            for family, sizes in WEIGHTED_SWEEP_QUICK.items()
            for n in sizes
        ]
        assert [(s.family, s.n) for s in WEIGHTED_SPECS] == expected

    def test_shared_scalars(self):
        for spec in WEIGHTED_SPECS:
            assert spec.kind == "weighted"
            assert spec.m_factor == 8.0
            assert spec.repetitions == 2
            assert spec.seed == 5
            assert spec.params == ()

    def test_params_sorted_and_hashable(self):
        [spec] = sweep_specs(
            "weighted-variant",
            {"ring": [8]},
            m_factor=2.0,
            repetitions=1,
            seed=1,
            variant="flow",
            engine="auto",
        )
        assert spec.params == (("engine", "auto"), ("variant", "flow"))
        hash(spec)  # specs must stay usable as dict keys / picklable


class TestRunCell:
    def test_known_kinds_cover_all_measurements(self):
        assert set(MEASUREMENT_KINDS) == {
            "approx",
            "exact",
            "weighted",
            "weighted-variant",
            "scenario-recovery",
            "shock-recovery",
            "churn-band",
        }

    def test_runs_weighted_cell(self):
        cell = run_cell(WEIGHTED_SPECS[0])
        assert isinstance(cell, FamilyMeasurement)
        assert cell.family == WEIGHTED_SPECS[0].family
        assert cell.num_repetitions == 2

    def test_variant_cell_forwards_params(self):
        [spec] = sweep_specs(
            "weighted-variant",
            {"ring": [8]},
            m_factor=10.0,
            repetitions=2,
            seed=3,
            variant="per-task",
            max_rounds=5_000,
        )
        cell = run_cell(spec)
        assert isinstance(cell, VariantMeasurement)
        assert cell.variant == "per-task"
        direct = measure_variant_threshold_time(
            "ring", 8, 10.0, repetitions=2, seed=3,
            variant="per-task", max_rounds=5_000,
        )
        assert cell.label == direct.label == "[6]-style per-task"
        assert cell.engine == direct.engine
        assert cell.num_converged == direct.num_converged
        np.testing.assert_array_equal(cell.median_rounds, direct.median_rounds)

    def test_unknown_kind_rejected(self):
        spec = CellSpec("bogus", "ring", 8, 1.0, 1, 1)
        with pytest.raises(ValidationError, match="unknown measurement kind"):
            run_cell(spec)


class TestExecuteCells:
    def test_serial_matches_pool(self):
        serial = execute_cells(WEIGHTED_SPECS, workers=None)
        pooled = execute_cells(WEIGHTED_SPECS, workers=2)
        assert serial == pooled

    def test_workers_one_is_serial_reference(self):
        assert execute_cells(WEIGHTED_SPECS, workers=1) == execute_cells(
            WEIGHTED_SPECS, workers=None
        )

    def test_order_preserved(self):
        cells = execute_cells(WEIGHTED_SPECS, workers=2)
        assert [(c.family, c.n) for c in cells] == [
            (s.family, s.n) for s in WEIGHTED_SPECS
        ]

    def test_empty_spec_list(self):
        assert execute_cells([], workers=4) == []

    def test_invalid_workers(self):
        with pytest.raises(ValidationError, match="workers"):
            execute_cells(WEIGHTED_SPECS, workers=0)

    def test_unknown_kind_rejected_before_fanout(self):
        bad = CellSpec("bogus", "ring", 8, 1.0, 1, 1)
        with pytest.raises(ValidationError, match="unknown measurement kind"):
            execute_cells([bad], workers=4)


class TestGroupByFamily:
    def test_groups_preserve_order(self):
        results = [f"{s.family}:{s.n}" for s in WEIGHTED_SPECS]
        grouped = group_by_family(WEIGHTED_SPECS, results)
        assert list(grouped) == list(WEIGHTED_SWEEP_QUICK)
        for family, sizes in WEIGHTED_SWEEP_QUICK.items():
            assert grouped[family] == [f"{family}:{n}" for n in sizes]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="results"):
            group_by_family(WEIGHTED_SPECS, ["only-one"])


class TestRegistryWorkersPassThrough:
    def test_legacy_runner_without_workers_keyword(self):
        """A plain (quick, seed) runner still works under workers=N."""
        experiment_id = "_test-legacy-no-workers"
        calls = []

        @register_experiment(experiment_id)
        def legacy(quick, seed):
            calls.append((quick, seed))
            return ExperimentResult(experiment_id=experiment_id, title="t")

        try:
            result = run_experiment(experiment_id, quick=True, workers=4)
            assert result.experiment_id == experiment_id
            assert calls == [(True, 20120716)]
        finally:
            _REGISTRY.pop(experiment_id, None)

    def test_workers_forwarded_to_aware_runner(self):
        experiment_id = "_test-workers-aware"
        seen = {}

        @register_experiment(experiment_id)
        def aware(quick, seed, workers=None):
            seen["workers"] = workers
            return ExperimentResult(experiment_id=experiment_id, title="t")

        try:
            run_experiment(experiment_id, workers=3)
            assert seen["workers"] == 3
            run_experiment(experiment_id)
            assert seen["workers"] is None
        finally:
            _REGISTRY.pop(experiment_id, None)

    def test_sweep_experiment_identical_at_any_worker_count(self):
        serial = run_experiment("table1-weighted", quick=True, seed=99)
        pooled = run_experiment("table1-weighted", quick=True, seed=99, workers=2)
        assert serial.passed == pooled.passed
        # Measurement data is identical at any worker count; the
        # run_meta record is the one field that (by design) describes
        # the invocation itself.
        serial_data = dict(serial.data)
        pooled_data = dict(pooled.data)
        assert serial_data.pop("run_meta")["workers_effective"] == 1
        assert pooled_data.pop("run_meta")["workers_effective"] == 2
        assert serial_data == pooled_data
        assert serial.series == pooled.series
        rendered = [table.render() for table in serial.tables]
        assert rendered == [table.render() for table in pooled.tables]

    def test_run_meta_records_rng_policy(self):
        result = run_experiment(
            "table1-weighted", quick=True, seed=99, rng_policy="counter"
        )
        meta = result.data["run_meta"]
        assert meta["rng_policy_requested"] == "counter"
        assert meta["rng_policy_effective"] == "counter"

    def test_legacy_runner_warns_on_counter_request(self):
        experiment_id = "_test-legacy-no-rng"

        @register_experiment(experiment_id)
        def legacy(quick, seed):
            return ExperimentResult(experiment_id=experiment_id, title="t")

        try:
            with pytest.warns(RuntimeWarning, match="rng_policy"):
                result = run_experiment(experiment_id, rng_policy="counter")
            meta = result.data["run_meta"]
            assert meta["rng_policy_requested"] == "counter"
            assert meta["rng_policy_effective"] == "spawned"
        finally:
            _REGISTRY.pop(experiment_id, None)


class TestRngPolicySpecs:
    def test_default_policy_is_spawned(self):
        for spec in WEIGHTED_SPECS:
            assert spec.rng_policy == "spawned"

    def test_sweep_specs_thread_policy(self):
        specs = sweep_specs(
            "weighted",
            WEIGHTED_SWEEP_QUICK,
            m_factor=8.0,
            repetitions=2,
            seed=5,
            rng_policy="counter",
        )
        assert all(spec.rng_policy == "counter" for spec in specs)

    def test_counter_cell_matches_spawned_cell_shape(self):
        """A counter cell returns the same measurement type with the
        same configuration fields (only the sample paths differ)."""
        spec = CellSpec(
            kind="weighted",
            family="ring",
            n=8,
            m_factor=2.0,
            repetitions=2,
            seed=5,
            rng_policy="counter",
        )
        counter = run_cell(spec)
        spawned = run_cell(
            CellSpec(
                kind="weighted",
                family="ring",
                n=8,
                m_factor=2.0,
                repetitions=2,
                seed=5,
            )
        )
        assert isinstance(counter, FamilyMeasurement)
        assert (counter.family, counter.n, counter.m) == (
            spawned.family,
            spawned.n,
            spawned.m,
        )
        assert counter.num_converged == counter.num_repetitions


class TestCounterSubprocessDeterminism:
    def test_pickled_counter_cell_reproduces_across_processes(self):
        """The counter layout's keys derive from plain integers (no
        per-process entropy, no object identity), so the *same pickled
        CellSpec* run in a fresh interpreter must reproduce this
        process's result byte-for-byte (compared as pickles) — the
        property that makes counter cells safe to fan over the process
        pool."""
        import os
        import pickle
        import subprocess
        import sys

        import repro

        spec = CellSpec(
            kind="weighted",
            family="ring",
            n=8,
            m_factor=2.0,
            repetitions=3,
            seed=77,
            rng_policy="counter",
        )
        local_result = run_cell(spec)

        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "import pickle, sys\n"
            "from repro.experiments.executor import run_cell\n"
            "spec = pickle.loads(sys.stdin.buffer.read())\n"
            "sys.stdout.buffer.write(pickle.dumps(run_cell(spec), protocol=4))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            input=pickle.dumps(spec, protocol=4),
            capture_output=True,
            env=env,
            check=True,
        )
        assert completed.stdout == pickle.dumps(local_result, protocol=4)
        assert pickle.loads(completed.stdout) == local_result
