"""Tests for the parallel sweep executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.experiments._common import (
    WEIGHTED_SWEEP_QUICK,
    FamilyMeasurement,
    VariantMeasurement,
    measure_variant_threshold_time,
)
from repro.experiments.executor import (
    MEASUREMENT_KINDS,
    CellSpec,
    execute_cells,
    group_by_family,
    run_cell,
    sweep_specs,
)
from repro.experiments.registry import (
    ExperimentResult,
    _REGISTRY,
    register_experiment,
    run_experiment,
)


WEIGHTED_SPECS = sweep_specs(
    "weighted", WEIGHTED_SWEEP_QUICK, m_factor=8.0, repetitions=2, seed=5
)


class TestSweepSpecs:
    def test_family_major_order(self):
        expected = [
            (family, n)
            for family, sizes in WEIGHTED_SWEEP_QUICK.items()
            for n in sizes
        ]
        assert [(s.family, s.n) for s in WEIGHTED_SPECS] == expected

    def test_shared_scalars(self):
        for spec in WEIGHTED_SPECS:
            assert spec.kind == "weighted"
            assert spec.m_factor == 8.0
            assert spec.repetitions == 2
            assert spec.seed == 5
            assert spec.params == ()

    def test_params_sorted_and_hashable(self):
        [spec] = sweep_specs(
            "weighted-variant",
            {"ring": [8]},
            m_factor=2.0,
            repetitions=1,
            seed=1,
            variant="flow",
            engine="auto",
        )
        assert spec.params == (("engine", "auto"), ("variant", "flow"))
        hash(spec)  # specs must stay usable as dict keys / picklable


class TestRunCell:
    def test_known_kinds_cover_all_measurements(self):
        assert set(MEASUREMENT_KINDS) == {
            "approx",
            "exact",
            "weighted",
            "weighted-variant",
            "scenario-recovery",
            "shock-recovery",
            "churn-band",
            "topology-resilience",
            "workload-replay",
            "workload-adversarial",
        }

    def test_runs_weighted_cell(self):
        cell = run_cell(WEIGHTED_SPECS[0])
        assert isinstance(cell, FamilyMeasurement)
        assert cell.family == WEIGHTED_SPECS[0].family
        assert cell.num_repetitions == 2

    def test_variant_cell_forwards_params(self):
        [spec] = sweep_specs(
            "weighted-variant",
            {"ring": [8]},
            m_factor=10.0,
            repetitions=2,
            seed=3,
            variant="per-task",
            max_rounds=5_000,
        )
        cell = run_cell(spec)
        assert isinstance(cell, VariantMeasurement)
        assert cell.variant == "per-task"
        direct = measure_variant_threshold_time(
            "ring", 8, 10.0, repetitions=2, seed=3,
            variant="per-task", max_rounds=5_000,
        )
        assert cell.label == direct.label == "[6]-style per-task"
        assert cell.engine == direct.engine
        assert cell.num_converged == direct.num_converged
        np.testing.assert_array_equal(cell.median_rounds, direct.median_rounds)

    def test_unknown_kind_rejected(self):
        spec = CellSpec("bogus", "ring", 8, 1.0, 1, 1)
        with pytest.raises(ValidationError, match="unknown measurement kind"):
            run_cell(spec)


class TestExecuteCells:
    def test_serial_matches_pool(self):
        serial = execute_cells(WEIGHTED_SPECS, workers=None)
        pooled = execute_cells(WEIGHTED_SPECS, workers=2)
        assert serial == pooled

    def test_workers_one_is_serial_reference(self):
        assert execute_cells(WEIGHTED_SPECS, workers=1) == execute_cells(
            WEIGHTED_SPECS, workers=None
        )

    def test_order_preserved(self):
        cells = execute_cells(WEIGHTED_SPECS, workers=2)
        assert [(c.family, c.n) for c in cells] == [
            (s.family, s.n) for s in WEIGHTED_SPECS
        ]

    def test_empty_spec_list(self):
        assert execute_cells([], workers=4) == []

    def test_invalid_workers(self):
        with pytest.raises(ValidationError, match="workers"):
            execute_cells(WEIGHTED_SPECS, workers=0)

    def test_unknown_kind_rejected_before_fanout(self):
        bad = CellSpec("bogus", "ring", 8, 1.0, 1, 1)
        with pytest.raises(ValidationError, match="unknown measurement kind"):
            execute_cells([bad], workers=4)


class TestGroupByFamily:
    def test_groups_preserve_order(self):
        results = [f"{s.family}:{s.n}" for s in WEIGHTED_SPECS]
        grouped = group_by_family(WEIGHTED_SPECS, results)
        assert list(grouped) == list(WEIGHTED_SWEEP_QUICK)
        for family, sizes in WEIGHTED_SWEEP_QUICK.items():
            assert grouped[family] == [f"{family}:{n}" for n in sizes]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="results"):
            group_by_family(WEIGHTED_SPECS, ["only-one"])


class TestRegistryWorkersPassThrough:
    def test_legacy_runner_without_workers_keyword(self):
        """A plain (quick, seed) runner still works under workers=N."""
        experiment_id = "_test-legacy-no-workers"
        calls = []

        @register_experiment(experiment_id)
        def legacy(quick, seed):
            calls.append((quick, seed))
            return ExperimentResult(experiment_id=experiment_id, title="t")

        try:
            result = run_experiment(experiment_id, quick=True, workers=4)
            assert result.experiment_id == experiment_id
            assert calls == [(True, 20120716)]
        finally:
            _REGISTRY.pop(experiment_id, None)

    def test_workers_forwarded_to_aware_runner(self):
        experiment_id = "_test-workers-aware"
        seen = {}

        @register_experiment(experiment_id)
        def aware(quick, seed, workers=None):
            seen["workers"] = workers
            return ExperimentResult(experiment_id=experiment_id, title="t")

        try:
            run_experiment(experiment_id, workers=3)
            assert seen["workers"] == 3
            run_experiment(experiment_id)
            assert seen["workers"] is None
        finally:
            _REGISTRY.pop(experiment_id, None)

    def test_sweep_experiment_identical_at_any_worker_count(self):
        serial = run_experiment("table1-weighted", quick=True, seed=99)
        pooled = run_experiment("table1-weighted", quick=True, seed=99, workers=2)
        assert serial.passed == pooled.passed
        # Measurement data is identical at any worker count; the
        # run_meta record is the one field that (by design) describes
        # the invocation itself.
        serial_data = dict(serial.data)
        pooled_data = dict(pooled.data)
        assert serial_data.pop("run_meta")["workers_effective"] == 1
        assert pooled_data.pop("run_meta")["workers_effective"] == 2
        assert serial_data == pooled_data
        assert serial.series == pooled.series
        rendered = [table.render() for table in serial.tables]
        assert rendered == [table.render() for table in pooled.tables]

    def test_run_meta_records_rng_policy(self):
        result = run_experiment(
            "table1-weighted", quick=True, seed=99, rng_policy="counter"
        )
        meta = result.data["run_meta"]
        assert meta["rng_policy_requested"] == "counter"
        assert meta["rng_policy_effective"] == "counter"

    def test_legacy_runner_warns_on_counter_request(self):
        experiment_id = "_test-legacy-no-rng"

        @register_experiment(experiment_id)
        def legacy(quick, seed):
            return ExperimentResult(experiment_id=experiment_id, title="t")

        try:
            with pytest.warns(RuntimeWarning, match="rng_policy"):
                result = run_experiment(experiment_id, rng_policy="counter")
            meta = result.data["run_meta"]
            assert meta["rng_policy_requested"] == "counter"
            assert meta["rng_policy_effective"] == "spawned"
        finally:
            _REGISTRY.pop(experiment_id, None)


class TestRngPolicySpecs:
    def test_default_policy_is_spawned(self):
        for spec in WEIGHTED_SPECS:
            assert spec.rng_policy == "spawned"

    def test_sweep_specs_thread_policy(self):
        specs = sweep_specs(
            "weighted",
            WEIGHTED_SWEEP_QUICK,
            m_factor=8.0,
            repetitions=2,
            seed=5,
            rng_policy="counter",
        )
        assert all(spec.rng_policy == "counter" for spec in specs)

    def test_counter_cell_matches_spawned_cell_shape(self):
        """A counter cell returns the same measurement type with the
        same configuration fields (only the sample paths differ)."""
        spec = CellSpec(
            kind="weighted",
            family="ring",
            n=8,
            m_factor=2.0,
            repetitions=2,
            seed=5,
            rng_policy="counter",
        )
        counter = run_cell(spec)
        spawned = run_cell(
            CellSpec(
                kind="weighted",
                family="ring",
                n=8,
                m_factor=2.0,
                repetitions=2,
                seed=5,
            )
        )
        assert isinstance(counter, FamilyMeasurement)
        assert (counter.family, counter.n, counter.m) == (
            spawned.family,
            spawned.n,
            spawned.m,
        )
        assert counter.num_converged == counter.num_repetitions


class TestCounterSubprocessDeterminism:
    def test_pickled_counter_cell_reproduces_across_processes(self):
        """The counter layout's keys derive from plain integers (no
        per-process entropy, no object identity), so the *same pickled
        CellSpec* run in a fresh interpreter must reproduce this
        process's result byte-for-byte (compared as pickles) — the
        property that makes counter cells safe to fan over the process
        pool."""
        import os
        import pickle
        import subprocess
        import sys

        import repro

        spec = CellSpec(
            kind="weighted",
            family="ring",
            n=8,
            m_factor=2.0,
            repetitions=3,
            seed=77,
            rng_policy="counter",
        )
        local_result = run_cell(spec)

        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "import pickle, sys\n"
            "from repro.experiments.executor import run_cell\n"
            "spec = pickle.loads(sys.stdin.buffer.read())\n"
            "sys.stdout.buffer.write(pickle.dumps(run_cell(spec), protocol=4))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            input=pickle.dumps(spec, protocol=4),
            capture_output=True,
            env=env,
            check=True,
        )
        assert completed.stdout == pickle.dumps(local_result, protocol=4)
        assert pickle.loads(completed.stdout) == local_result


def _pickled(value):
    import pickle

    return pickle.dumps(value, protocol=4)


class TestShardedExecution:
    """Replica-sharded cells: byte-identical merge at any shard plan."""

    @pytest.mark.parametrize("rng_policy", ["spawned", "counter"])
    def test_sharded_family_cell_matches_monolithic(self, rng_policy):
        monolithic = run_cell(
            CellSpec("weighted", "ring", 8, 2.0, 7, 123, rng_policy=rng_policy)
        )
        for shard_size in (1, 2, 3, 5):
            sharded = execute_cells(
                [
                    CellSpec(
                        "weighted",
                        "ring",
                        8,
                        2.0,
                        7,
                        123,
                        rng_policy=rng_policy,
                        shard_size=shard_size,
                    )
                ],
                workers=2,
            )[0]
            assert _pickled(sharded) == _pickled(monolithic)

    @pytest.mark.parametrize("rng_policy", ["spawned", "counter"])
    def test_sharded_variant_cell_matches_monolithic(self, rng_policy):
        params = (("max_rounds", 10_000), ("variant", "flow"))
        monolithic = run_cell(
            CellSpec(
                "weighted-variant",
                "ring",
                8,
                2.0,
                5,
                31,
                params=params,
                rng_policy=rng_policy,
            )
        )
        sharded = execute_cells(
            [
                CellSpec(
                    "weighted-variant",
                    "ring",
                    8,
                    2.0,
                    5,
                    31,
                    params=params,
                    rng_policy=rng_policy,
                    shard_size=2,
                )
            ],
            workers=2,
        )[0]
        assert _pickled(sharded) == _pickled(monolithic)
        # The churn probe ran on the replica-0 shard and its fields
        # carried through the merge.
        assert sharded.probe_converged == monolithic.probe_converged

    def test_sharded_scenario_cell_matches_monolithic(self):
        monolithic = run_cell(
            CellSpec("scenario-recovery", "ring", 8, 2.0, 4, 9)
        )
        sharded = execute_cells(
            [CellSpec("scenario-recovery", "ring", 8, 2.0, 4, 9, shard_size=2)],
            workers=2,
        )[0]
        assert _pickled(sharded) == _pickled(monolithic)

    def test_sharded_sweep_serial_matches_pool(self):
        specs = sweep_specs(
            "weighted",
            WEIGHTED_SWEEP_QUICK,
            m_factor=8.0,
            repetitions=4,
            seed=5,
            shard_size=2,
        )
        serial = execute_cells(specs, workers=None)
        pooled = execute_cells(specs, workers=3)
        # Per-cell pickles: pickling the whole list at once lets the
        # memo encode accidental object sharing between cells, which
        # differs between in-process and round-tripped results even
        # when every cell is value- and byte-identical on its own.
        assert [_pickled(c) for c in serial] == [_pickled(c) for c in pooled]
        assert [(c.family, c.n) for c in pooled] == [
            (s.family, s.n) for s in specs
        ]

    def test_counter_unshardable_kinds_refused(self):
        for kind in ("approx", "scenario-recovery"):
            spec = CellSpec(
                kind, "ring", 8, 2.0, 6, 1, rng_policy="counter", shard_size=2
            )
            with pytest.raises(ValidationError, match="cannot shard"):
                run_cell(spec)
            with pytest.raises(ValidationError, match="cannot shard"):
                execute_cells([spec], workers=2)

    def test_counter_shard_size_without_split_is_harmless(self):
        """shard_size >= repetitions never splits, so an unshardable
        counter kind with it still runs (monolithically)."""
        cell = run_cell(
            CellSpec(
                "approx",
                "ring",
                8,
                2.0,
                3,
                1,
                rng_policy="counter",
                shard_size=10,
            )
        )
        assert cell.num_repetitions == 3

    def test_invalid_shard_size_rejected(self):
        with pytest.raises(ValidationError, match="shard_size"):
            run_cell(CellSpec("weighted", "ring", 8, 2.0, 3, 1, shard_size=0))

    def test_pickled_sharded_counter_cell_reproduces_across_processes(self):
        """The sharded-counter analogue of the monolithic subprocess
        test: a pickled sharded spec in a fresh interpreter reproduces
        this process's *monolithic* result byte-for-byte."""
        import os
        import pickle
        import subprocess
        import sys

        import repro

        monolithic = run_cell(
            CellSpec(
                "weighted", "ring", 8, 2.0, 7, 77, rng_policy="counter"
            )
        )
        sharded_spec = CellSpec(
            "weighted",
            "ring",
            8,
            2.0,
            7,
            77,
            rng_policy="counter",
            shard_size=3,
        )

        env = dict(os.environ)
        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "import pickle, sys\n"
            "from repro.experiments.executor import execute_cells\n"
            "spec = pickle.loads(sys.stdin.buffer.read())\n"
            "[cell] = execute_cells([spec], workers=2)\n"
            "sys.stdout.buffer.write(pickle.dumps(cell, protocol=4))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            input=pickle.dumps(sharded_spec, protocol=4),
            capture_output=True,
            env=env,
            check=True,
        )
        assert completed.stdout == pickle.dumps(monolithic, protocol=4)


class TestAdaptiveSizing:
    """target_ci: wave-based adaptive ensemble sizing."""

    SPEC = CellSpec(
        "weighted", "ring", 16, 4.0, 64, 7, shard_size=8, target_ci=5.0
    )

    def test_stops_before_cap_with_fewer_replicas(self):
        from repro.experiments.executor import execute_cells_report

        report = execute_cells_report([self.SPEC], workers=None)
        timing = report.timings[0]
        assert timing.adaptive_stop == "target"
        assert timing.ci_half_width <= self.SPEC.target_ci
        assert timing.repetitions_effective < timing.repetitions_requested
        assert (
            report.results[0].num_repetitions == timing.repetitions_effective
        )

    def test_deterministic_across_worker_counts(self):
        from repro.experiments.executor import execute_cells_report

        specs = [
            self.SPEC,
            CellSpec(
                "weighted",
                "hypercube",
                16,
                4.0,
                64,
                7,
                shard_size=8,
                target_ci=5.0,
            ),
        ]
        serial = execute_cells_report(specs, workers=None)
        pooled = execute_cells_report(specs, workers=2)
        assert [_pickled(c) for c in serial.results] == [
            _pickled(c) for c in pooled.results
        ]
        assert [t.repetitions_effective for t in serial.timings] == [
            t.repetitions_effective for t in pooled.timings
        ]
        # run_cell is the single-process reference for adaptive specs
        # too.
        assert _pickled(run_cell(self.SPEC)) == _pickled(serial.results[0])

    def test_unreachable_target_falls_to_cap(self):
        from repro.experiments.executor import execute_cells_report

        spec = CellSpec(
            "weighted", "ring", 8, 2.0, 6, 7, shard_size=2, target_ci=1e-9
        )
        report = execute_cells_report([spec], workers=None)
        timing = report.timings[0]
        assert timing.adaptive_stop == "cap"
        assert timing.repetitions_effective == 6
        # The capped run measures the same ensemble as the fixed-R run.
        fixed = run_cell(CellSpec("weighted", "ring", 8, 2.0, 6, 7))
        assert _pickled(report.results[0]) == _pickled(fixed)

    def test_all_nan_waves_fall_to_cap_with_nan_half_width(self):
        """No replica ever converges (max_budget=1), so every CI
        evaluation sees an all-NaN sample: the controller must run to
        the cap and report a NaN half-width, never stop 'target'."""
        from repro.experiments.executor import execute_cells_report

        spec = CellSpec(
            "weighted",
            "ring",
            8,
            2.0,
            6,
            7,
            params=(("max_budget", 1),),
            shard_size=2,
            target_ci=100.0,
        )
        report = execute_cells_report([spec], workers=None)
        timing = report.timings[0]
        cell = report.results[0]
        assert cell.num_converged == 0
        assert timing.adaptive_stop == "cap"
        assert timing.repetitions_effective == 6
        assert np.isnan(timing.ci_half_width)
        assert np.isnan(cell.median_rounds)

    def test_non_family_kind_rejected(self):
        for kind in ("weighted-variant", "scenario-recovery"):
            with pytest.raises(ValidationError, match="adaptive sizing"):
                run_cell(
                    CellSpec(kind, "ring", 8, 2.0, 6, 1, target_ci=1.0)
                )

    def test_invalid_target_rejected(self):
        with pytest.raises(ValidationError, match="target_ci"):
            run_cell(CellSpec("weighted", "ring", 8, 2.0, 6, 1, target_ci=0.0))


class TestExecutionReport:
    def test_timings_shape_and_json(self):
        import json

        from repro.experiments.executor import execute_cells_report

        specs = [
            CellSpec("weighted", "ring", 8, 2.0, 4, 5, shard_size=2),
            CellSpec("weighted", "torus", 9, 2.0, 4, 5),
        ]
        report = execute_cells_report(specs, workers=None)
        assert len(report.timings) == len(specs)
        sharded, monolithic = report.timings
        assert [
            (s.replica_offset, s.replica_count) for s in sharded.shards
        ] == [(0, 2), (2, 2)]
        assert [
            (s.replica_offset, s.replica_count) for s in monolithic.shards
        ] == [(0, 4)]
        for timing in report.timings:
            assert timing.seconds > 0.0
            assert timing.repetitions_requested == 4
            assert timing.repetitions_effective == 4
            assert timing.adaptive_stop is None
        payload = json.loads(json.dumps(report.timings_json()))
        assert payload[0]["family"] == "ring"
        assert payload[0]["shards"][1]["replica_offset"] == 2

    def test_execute_cells_returns_bare_results(self):
        from repro.experiments.executor import execute_cells_report

        specs = [CellSpec("weighted", "ring", 8, 2.0, 2, 5)]
        assert _pickled(execute_cells(specs, workers=None)) == _pickled(
            list(execute_cells_report(specs, workers=None).results)
        )


class TestRunMetaSharding:
    def test_run_meta_records_sharding_and_cell_timings(self):
        result = run_experiment(
            "table1-weighted", quick=True, seed=99, workers=2, shard_size=2
        )
        meta = result.data["run_meta"]
        assert meta["shard_size_requested"] == 2
        assert meta["shard_size_effective"] == 2
        assert meta["target_ci_requested"] is None
        timings = meta["cell_timings"]
        assert timings, "sweep experiments must record per-cell timings"
        for cell in timings:
            assert cell["repetitions_requested"] == 3
            assert cell["repetitions_effective"] == 3
            assert cell["seconds"] > 0.0
            # quick sweeps have 3 repetitions -> two shards of (2, 1)
            assert [
                (s["replica_offset"], s["replica_count"])
                for s in cell["shards"]
            ] == [(0, 2), (2, 1)]

    def test_run_meta_records_adaptive_effective_repetitions(self):
        result = run_experiment(
            "table1-weighted", quick=True, seed=99, target_ci=500.0
        )
        meta = result.data["run_meta"]
        assert meta["target_ci_effective"] == 500.0
        for cell in meta["cell_timings"]:
            assert cell["adaptive_stop"] in ("target", "cap")
            assert (
                cell["repetitions_effective"] <= cell["repetitions_requested"]
            )

    def test_legacy_runner_warns_on_shard_size(self):
        experiment_id = "_test-legacy-no-shard"

        @register_experiment(experiment_id)
        def legacy(quick, seed):
            return ExperimentResult(experiment_id=experiment_id, title="t")

        try:
            with pytest.warns(RuntimeWarning, match="shard_size"):
                result = run_experiment(experiment_id, shard_size=4)
            meta = result.data["run_meta"]
            assert meta["shard_size_requested"] == 4
            assert meta["shard_size_effective"] is None
        finally:
            _REGISTRY.pop(experiment_id, None)
