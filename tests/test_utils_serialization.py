"""Tests for repro.utils.serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.serialization import (
    from_json,
    read_json,
    rows_to_csv_text,
    to_json,
    write_csv,
    write_json,
)


class TestToJson:
    def test_plain_types_roundtrip(self):
        data = {"a": 1, "b": [1.5, "x"], "c": None, "d": True}
        assert from_json(to_json(data)) == data

    def test_numpy_scalars(self):
        data = {"i": np.int64(3), "f": np.float64(2.5), "b": np.bool_(True)}
        parsed = from_json(to_json(data))
        assert parsed == {"i": 3, "f": 2.5, "b": True}

    def test_numpy_array(self):
        parsed = from_json(to_json({"v": np.arange(3)}))
        assert parsed["v"] == [0, 1, 2]

    def test_nested_structures(self):
        data = {"outer": {"inner": [np.float64(1.0), {"deep": np.int32(2)}]}}
        parsed = from_json(to_json(data))
        assert parsed["outer"]["inner"][1]["deep"] == 2

    def test_tuple_becomes_list(self):
        assert from_json(to_json((1, 2))) == [1, 2]

    def test_unserializable_raises(self):
        with pytest.raises(ValidationError):
            to_json({"bad": object()})


class TestFileIo:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        write_json(path, {"x": [1, 2]})
        assert read_json(path) == {"x": [1, 2]}

    def test_csv_with_headers(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, [[1, "a"], [2, "b"]], headers=["num", "letter"])
        text = path.read_text()
        assert text.splitlines()[0] == "num,letter"
        assert "1,a" in text

    def test_csv_text_no_headers(self):
        text = rows_to_csv_text([[np.int64(5), 2.5]])
        assert text.strip() == "5,2.5"
