"""Tests for repro.spectral.cheeger."""

from __future__ import annotations

import pytest

from repro.errors import SpectralError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    torus_graph,
)
from repro.spectral.cheeger import (
    EXACT_CUTOFF,
    isoperimetric_number_exact,
    isoperimetric_number_sweep,
)
from repro.spectral.eigen import algebraic_connectivity


class TestExact:
    def test_cycle(self):
        """i(C_n) = 2 / floor(n/2): cut an arc of half the nodes."""
        assert isoperimetric_number_exact(cycle_graph(8)) == pytest.approx(0.5)
        assert isoperimetric_number_exact(cycle_graph(6)) == pytest.approx(2.0 / 3.0)

    def test_complete(self):
        """i(K_n) = ceil(n/2): each subset vertex connects to all outside."""
        assert isoperimetric_number_exact(complete_graph(6)) == pytest.approx(3.0)
        assert isoperimetric_number_exact(complete_graph(5)) == pytest.approx(3.0)

    def test_star(self):
        """i(S_n) = 1: take the leaves (without the center)."""
        assert isoperimetric_number_exact(star_graph(7)) == pytest.approx(1.0)

    def test_path(self):
        """i(P_n) = 1/floor(n/2): cut at the middle."""
        assert isoperimetric_number_exact(path_graph(6)) == pytest.approx(1.0 / 3.0)

    def test_too_large_rejected(self):
        with pytest.raises(SpectralError):
            isoperimetric_number_exact(cycle_graph(EXACT_CUTOFF + 2))


class TestSweep:
    def test_upper_bounds_exact(self):
        for graph in [cycle_graph(8), complete_graph(8), star_graph(8), torus_graph(3)]:
            exact = isoperimetric_number_exact(graph)
            sweep = isoperimetric_number_sweep(graph)
            assert sweep >= exact - 1e-9

    def test_sweep_exact_on_cycle(self):
        """The Fiedler sweep finds the optimal arc cut on cycles."""
        assert isoperimetric_number_sweep(cycle_graph(10)) == pytest.approx(
            isoperimetric_number_exact(cycle_graph(10))
        )

    def test_works_on_larger_graph(self):
        value = isoperimetric_number_sweep(torus_graph(6))
        assert value > 0


class TestCheegerSandwich:
    def test_lemma_110(self):
        """i^2/(2 Delta) <= lambda_2 <= 2 i on exactly solvable graphs."""
        for graph in [cycle_graph(8), complete_graph(7), star_graph(9), path_graph(7)]:
            i_value = isoperimetric_number_exact(graph)
            lambda2 = algebraic_connectivity(graph)
            assert i_value**2 / (2.0 * graph.max_degree) <= lambda2 + 1e-9
            assert lambda2 <= 2.0 * i_value + 1e-9
