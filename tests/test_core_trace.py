"""Tests for repro.core.trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocols import RoundSummary
from repro.core.trace import RecordingOptions, Trace, TraceRecorder
from repro.errors import ValidationError
from repro.model.state import UniformState


@pytest.fixture
def state(ring8):
    return UniformState(np.array([40, 10, 5, 5, 5, 5, 5, 5]), np.ones(8))


class TestRecordingOptions:
    def test_defaults(self):
        options = RecordingOptions()
        assert options.psi0 and options.moves
        assert not options.psi1 and not options.l_delta
        assert options.every == 1

    def test_every_validated(self):
        with pytest.raises(ValidationError):
            RecordingOptions(every=0)


class TestTraceRecorder:
    def test_records_initial_and_rounds(self, ring8, state):
        recorder = TraceRecorder()
        recorder.record(0, state, ring8, None)
        recorder.record(1, state, ring8, RoundSummary(3, 3.0, False))
        trace = recorder.finalize()
        assert len(trace) == 2
        np.testing.assert_array_equal(trace.rounds, [0, 1])
        np.testing.assert_array_equal(trace.tasks_moved, [0, 3])

    def test_every_skips(self, ring8, state):
        recorder = TraceRecorder(RecordingOptions(every=2))
        for round_index in range(5):
            recorder.record(round_index, state, ring8, RoundSummary(1, 1.0, False))
        trace = recorder.finalize()
        np.testing.assert_array_equal(trace.rounds, [0, 2, 4])

    def test_optional_channels(self, ring8, state):
        recorder = TraceRecorder(
            RecordingOptions(psi0=True, psi1=True, l_delta=True, moves=False)
        )
        recorder.record(0, state, ring8, None)
        trace = recorder.finalize()
        assert trace.psi1 is not None
        assert trace.l_delta is not None
        assert trace.tasks_moved is None

    def test_disabled_psi0(self, ring8, state):
        recorder = TraceRecorder(RecordingOptions(psi0=False))
        recorder.record(0, state, ring8, None)
        trace = recorder.finalize()
        assert trace.psi0 is None


class TestTraceQueries:
    def make_trace(self, psi0_values):
        n = len(psi0_values)
        return Trace(
            rounds=np.arange(n, dtype=np.int64),
            psi0=np.asarray(psi0_values, dtype=float),
            psi1=None,
            l_delta=None,
            tasks_moved=np.ones(n, dtype=np.int64),
            weight_moved=np.ones(n),
        )

    def test_first_round_below(self):
        trace = self.make_trace([100.0, 50.0, 20.0, 5.0])
        assert trace.first_round_psi0_below(30.0) == 2
        assert trace.first_round_psi0_below(200.0) == 0
        assert trace.first_round_psi0_below(1.0) is None

    def test_first_round_requires_psi0(self):
        trace = Trace(
            rounds=np.array([0]),
            psi0=None,
            psi1=None,
            l_delta=None,
            tasks_moved=None,
            weight_moved=None,
        )
        with pytest.raises(ValidationError):
            trace.first_round_psi0_below(1.0)

    def test_total_tasks_moved(self):
        trace = self.make_trace([4.0, 3.0, 2.0])
        assert trace.total_tasks_moved() == 3

    def test_decay_rate_geometric_series(self):
        values = [1000.0 * 0.8**t for t in range(20)]
        trace = self.make_trace(values)
        assert trace.psi0_decay_rate() == pytest.approx(0.8, rel=1e-6)

    def test_decay_rate_needs_positive_samples(self):
        trace = self.make_trace([0.0, 0.0])
        with pytest.raises(ValidationError):
            trace.psi0_decay_rate()
