"""Shared fixtures for the test suite.

Also registers the ``ci`` Hypothesis profile: derandomized (fixed seed)
so the property-based equivalence tests are deterministic on CI runners.
Loaded automatically when ``CI`` is set (GitHub Actions does) or when
``HYPOTHESIS_PROFILE=ci`` is exported; local runs keep Hypothesis's
default randomized exploration.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

settings.register_profile("ci", derandomize=True, deadline=None)
if os.environ.get("CI") or os.environ.get("HYPOTHESIS_PROFILE") == "ci":
    settings.load_profile("ci")

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
    torus_graph,
)
from repro.model.speeds import uniform_speeds
from repro.model.state import UniformState, WeightedState


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    """Skip backend-marked tests whose optional dependency is missing.

    ``requires_numba`` / ``requires_cupy`` tests skip (never fail) when
    the ``jit`` / ``gpu`` extra is not installed, so the conformance
    suite runs green on a minimal checkout and picks the backends up
    automatically once the extras appear.
    """
    import importlib.util

    for marker_name, module in (("requires_numba", "numba"), ("requires_cupy", "cupy")):
        if importlib.util.find_spec(module) is not None:
            continue
        skip = pytest.mark.skip(
            reason=f"{module} is not installed (install the "
            f"{'jit' if module == 'numba' else 'gpu'} extra)"
        )
        for item in items:
            if marker_name in item.keywords:
                item.add_marker(skip)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--rng-policy",
        choices=("spawned", "counter"),
        default="spawned",
        help="stream-layout policy the policy-matrix tests run the "
        "measurement pipeline under (CI runs the fast tier once per "
        "policy)",
    )


@pytest.fixture
def cli_rng_policy(request: pytest.FixtureRequest) -> str:
    """The ``--rng-policy`` the current pytest invocation selected."""
    return request.config.getoption("--rng-policy")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def ring8():
    return cycle_graph(8)


@pytest.fixture
def path5():
    return path_graph(5)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def torus9():
    return torus_graph(3)


@pytest.fixture
def grid9():
    return grid_graph(3)


@pytest.fixture
def cube8():
    return hypercube_graph(3)


@pytest.fixture
def star6():
    return star_graph(6)


@pytest.fixture
def small_graphs(ring8, path5, k5, torus9, grid9, cube8, star6):
    """A representative batch of small connected graphs."""
    return [ring8, path5, k5, torus9, grid9, cube8, star6]


@pytest.fixture
def uniform_state_ring8(ring8):
    """80 tasks spread unevenly on the 8-ring with unit speeds."""
    counts = np.array([30, 20, 10, 5, 5, 4, 3, 3])
    return UniformState(counts, uniform_speeds(8))


@pytest.fixture
def weighted_state_ring8(ring8, rng):
    """60 weighted tasks on the 8-ring with mixed speeds."""
    weights = rng.uniform(0.2, 1.0, size=60)
    locations = rng.integers(0, 8, size=60)
    speeds = np.array([1.0, 2.0, 1.0, 3.0, 1.0, 2.0, 1.0, 1.0])
    return WeightedState(locations, weights, speeds)
