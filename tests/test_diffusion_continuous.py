"""Tests for repro.diffusion.continuous."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.continuous import (
    ContinuousDiffusion,
    SecondOrderDiffusion,
    run_continuous_diffusion,
)
from repro.errors import ProtocolError
from repro.graphs.generators import cycle_graph, path_graph, torus_graph


class TestContinuousDiffusion:
    def test_mass_conserved(self, torus9, rng):
        speeds = rng.uniform(1.0, 3.0, size=9)
        scheme = ContinuousDiffusion(torus9, speeds)
        weights = rng.uniform(0.0, 100.0, size=9)
        after = scheme.run(weights, 50)
        assert after.sum() == pytest.approx(weights.sum(), rel=1e-10)

    def test_converges_to_speed_proportional(self, torus9):
        speeds = np.array([1.0, 2.0, 1.0, 3.0, 1.0, 2.0, 1.0, 1.0, 2.0])
        scheme = ContinuousDiffusion(torus9, speeds)
        weights = np.zeros(9)
        weights[0] = 140.0
        final = scheme.run(weights, 3000)
        target = 140.0 / speeds.sum() * speeds
        np.testing.assert_allclose(final, target, atol=1e-6)

    def test_balanced_is_fixed_point(self, ring8):
        speeds = np.ones(8)
        scheme = ContinuousDiffusion(ring8, speeds)
        weights = np.full(8, 5.0)
        np.testing.assert_allclose(scheme.step(weights), weights)

    def test_monotone_potential(self, ring8):
        """Psi_0 never increases under deterministic diffusion."""
        speeds = np.ones(8)
        scheme = ContinuousDiffusion(ring8, speeds)
        weights = np.array([80.0, 0, 0, 0, 0, 0, 0, 0])
        target = weights.sum() / 8.0 * speeds
        previous = float(np.sum((weights - target) ** 2))
        for _ in range(100):
            weights = scheme.step(weights)
            current = float(np.sum((weights - target) ** 2))
            assert current <= previous + 1e-9
            previous = current

    def test_trajectory_shape(self, ring8):
        scheme = ContinuousDiffusion(ring8, np.ones(8))
        history = scheme.trajectory(np.full(8, 2.0), 10)
        assert history.shape == (11, 8)
        np.testing.assert_allclose(history[0], 2.0)

    def test_flow_direction_high_to_low(self):
        graph = path_graph(2)
        scheme = ContinuousDiffusion(graph, np.ones(2))
        after = scheme.step(np.array([10.0, 0.0]))
        assert after[0] < 10.0
        assert after[1] > 0.0

    def test_bad_speeds_rejected(self, ring8):
        with pytest.raises(ProtocolError):
            ContinuousDiffusion(ring8, np.zeros(8))

    def test_convenience_wrapper(self, ring8):
        final = run_continuous_diffusion(ring8, np.ones(8), np.full(8, 3.0), 5)
        np.testing.assert_allclose(final, 3.0)


class TestSecondOrderDiffusion:
    def test_beta_one_matches_first_order(self, torus9):
        speeds = np.ones(9)
        weights = np.zeros(9)
        weights[0] = 90.0
        first = ContinuousDiffusion(torus9, speeds).run(weights.copy(), 20)
        second = SecondOrderDiffusion(torus9, speeds, beta=1.0).run(weights.copy(), 20)
        np.testing.assert_allclose(first, second, atol=1e-9)

    def test_acceleration_on_slow_graph(self):
        """On a long cycle, beta > 1 converges faster than beta = 1."""
        graph = cycle_graph(24)
        speeds = np.ones(24)
        weights = np.zeros(24)
        weights[0] = 240.0
        target = 10.0
        rounds = 400

        def residual(beta):
            scheme = SecondOrderDiffusion(graph, speeds, beta=beta)
            final = scheme.run(weights.copy(), rounds)
            return float(np.abs(final - target).max())

        assert residual(1.8) < residual(1.0)

    def test_mass_conserved(self, torus9, rng):
        speeds = rng.uniform(1.0, 2.0, size=9)
        scheme = SecondOrderDiffusion(torus9, speeds, beta=1.5)
        weights = rng.uniform(0.0, 50.0, size=9)
        final = scheme.run(weights, 60)
        assert final.sum() == pytest.approx(weights.sum(), rel=1e-9)

    def test_beta_range_validated(self, ring8):
        with pytest.raises(ProtocolError):
            SecondOrderDiffusion(ring8, np.ones(8), beta=2.0)
        with pytest.raises(ProtocolError):
            SecondOrderDiffusion(ring8, np.ones(8), beta=0.5)

    def test_zero_rounds(self, ring8):
        scheme = SecondOrderDiffusion(ring8, np.ones(8))
        weights = np.full(8, 4.0)
        np.testing.assert_allclose(scheme.run(weights, 0), weights)
