"""Error hierarchy and failure-injection tests.

Verifies that the library fails loudly and precisely: the exception
taxonomy is coherent, invalid configurations are rejected at the right
layer, and degenerate topologies (isolated nodes, disconnected graphs)
are handled without silent corruption.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.protocols import SelfishUniformProtocol, SelfishWeightedProtocol
from repro.core.simulator import Simulator
from repro.core.stopping import NashStop, StoppingRule
from repro.errors import (
    ConvergenceError,
    DisconnectedGraphError,
    ExperimentError,
    GraphError,
    ModelError,
    PlacementError,
    ProtocolError,
    ReproError,
    SimulationError,
    SpectralError,
    SpeedError,
    ValidationError,
)
from repro.graphs.generators import from_edges, path_graph
from repro.model.state import UniformState, WeightedState


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [
            GraphError,
            DisconnectedGraphError,
            SpectralError,
            ModelError,
            SpeedError,
            PlacementError,
            ProtocolError,
            SimulationError,
            ConvergenceError,
            ExperimentError,
            ValidationError,
        ],
    )
    def test_all_subclass_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_disconnected_is_graph_error(self):
        assert issubclass(DisconnectedGraphError, GraphError)

    def test_speed_error_is_model_error(self):
        assert issubclass(SpeedError, ModelError)

    def test_convergence_error_carries_rounds(self):
        error = ConvergenceError("did not converge", rounds=42)
        assert error.rounds == 42

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            repro.cycle_graph(1)  # ValidationError


class TestFailurePropagation:
    def test_raising_stopping_rule_propagates(self, ring8):
        class ExplodingStop(StoppingRule):
            def satisfied(self, state, graph):
                raise RuntimeError("boom")

        state = UniformState(np.full(8, 5), np.ones(8))
        simulator = Simulator(ring8, SelfishUniformProtocol(), seed=0)
        with pytest.raises(RuntimeError, match="boom"):
            simulator.run(state, stopping=ExplodingStop(), max_rounds=10)

    def test_state_graph_size_mismatch_rejected_upfront(self, ring8):
        state = UniformState([1, 2, 3], np.ones(3))
        simulator = Simulator(ring8, SelfishUniformProtocol(), seed=0)
        with pytest.raises(SimulationError, match="vertices"):
            simulator.run(state, stopping=NashStop(), max_rounds=5)

    def test_wrong_state_type_rejected_by_each_protocol(self, ring8, rng):
        uniform = UniformState(np.full(8, 2), np.ones(8))
        weighted = WeightedState([0], [0.5], np.ones(8))
        with pytest.raises(ProtocolError):
            SelfishUniformProtocol().execute_round(weighted, ring8, rng)
        with pytest.raises(ProtocolError):
            SelfishWeightedProtocol().execute_round(uniform, ring8, rng)


class TestDegenerateTopologies:
    def test_isolated_node_tasks_are_stuck(self, rng):
        """Tasks on a degree-0 node never move; others balance around it."""
        graph = from_edges(3, [(0, 1)])  # node 2 isolated
        state = UniformState([10, 0, 7], np.ones(3))
        protocol = SelfishUniformProtocol()
        for _ in range(200):
            protocol.execute_round(state, graph, rng)
        assert state.counts[2] == 7  # untouched
        assert state.counts[0] + state.counts[1] == 10

    def test_disconnected_components_balance_independently(self, rng):
        graph = from_edges(4, [(0, 1), (2, 3)])
        state = UniformState([20, 0, 0, 12], np.ones(4))
        result = repro.run_protocol(
            graph,
            SelfishUniformProtocol(),
            state,
            stopping=NashStop(),
            max_rounds=20_000,
            seed=1,
        )
        assert result.converged
        assert state.counts[0] + state.counts[1] == 20
        assert state.counts[2] + state.counts[3] == 12
        assert abs(int(state.counts[0]) - int(state.counts[1])) <= 1
        assert abs(int(state.counts[2]) - int(state.counts[3])) <= 1

    def test_lambda2_refuses_disconnected(self):
        graph = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            repro.algebraic_connectivity(graph)

    def test_weighted_tasks_on_isolated_node(self, rng):
        graph = from_edges(3, [(0, 1)])
        state = WeightedState([2, 2], [0.5, 0.5], np.ones(3))
        protocol = SelfishWeightedProtocol()
        for _ in range(50):
            summary = protocol.execute_round(state, graph, rng)
            assert summary.tasks_moved == 0
        np.testing.assert_array_equal(state.task_nodes, [2, 2])

    def test_single_edge_graph_extreme_imbalance(self, rng):
        graph = path_graph(2)
        state = UniformState([10**9, 0], np.ones(2))
        protocol = SelfishUniformProtocol()
        summary = protocol.execute_round(state, graph, rng)
        assert state.num_tasks == 10**9
        assert summary.tasks_moved > 0

    def test_empty_graph_protocol_noop(self, rng):
        graph = from_edges(3, [])
        state = UniformState([5, 5, 5], np.ones(3))
        summary = SelfishUniformProtocol().execute_round(state, graph, rng)
        assert summary.tasks_moved == 0


class TestExperimentErrors:
    def test_unknown_experiment(self):
        from repro.experiments.registry import run_experiment

        with pytest.raises(ExperimentError):
            run_experiment("nonexistent")
