"""Tests for repro.spectral.bounds (Appendix A lemmas)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpectralError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.properties import diameter
from repro.spectral.bounds import (
    corollary_116_bounds,
    cheeger_bounds,
    fiedler_degree_upper_bound,
    interlacing_bounds,
    lambda2_universal_lower_bound,
    mohar_diameter_lower_bound,
    rayleigh_lower_bound_check,
)
from repro.spectral.eigen import algebraic_connectivity


class TestFiedlerBound:
    def test_holds_on_small_graphs(self, small_graphs):
        """Lemma 1.7: lambda_2 <= n/(n-1) min deg."""
        for graph in small_graphs:
            assert algebraic_connectivity(graph) <= fiedler_degree_upper_bound(
                graph
            ) + 1e-9

    def test_complete_graph_tight(self):
        """K_n attains the bound: lambda_2 = n = n/(n-1) * (n-1)."""
        graph = complete_graph(6)
        assert algebraic_connectivity(graph) == pytest.approx(
            fiedler_degree_upper_bound(graph), rel=1e-9
        )

    def test_needs_two_vertices(self):
        from repro.graphs.graph import Graph

        with pytest.raises(SpectralError):
            fiedler_degree_upper_bound(Graph(1, []))


class TestMoharDiameterBound:
    def test_holds(self, small_graphs):
        """Lemma 1.5: diam >= 4/(n lambda_2)."""
        for graph in small_graphs:
            assert diameter(graph) >= mohar_diameter_lower_bound(graph) - 1e-9

    def test_universal_lower_bound(self, small_graphs):
        """Corollary 1.6: lambda_2 >= 4/n^2."""
        for graph in small_graphs:
            assert algebraic_connectivity(graph) >= lambda2_universal_lower_bound(
                graph
            ) - 1e-12

    def test_path_close_to_universal(self):
        """Long paths have lambda_2 = Theta(1/n^2), same order as the bound."""
        graph = path_graph(30)
        ratio = algebraic_connectivity(graph) / lambda2_universal_lower_bound(graph)
        assert 1.0 <= ratio <= 10.0


class TestCheegerBounds:
    def test_bracket_shape(self):
        lower, upper = cheeger_bounds(2.0, 4)
        assert lower == pytest.approx(0.5)
        assert upper == pytest.approx(4.0)

    def test_invalid_inputs(self):
        with pytest.raises(SpectralError):
            cheeger_bounds(-1.0, 4)
        with pytest.raises(SpectralError):
            cheeger_bounds(1.0, 0)


class TestInterlacing:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_holds_with_random_speeds(self, seed, torus9):
        rng = np.random.default_rng(seed)
        speeds = rng.uniform(1.0, 4.0, size=9)
        report = interlacing_bounds(torus9, speeds)
        assert report.holds
        assert report.num_checked > 0

    def test_uniform_speeds_equalities(self, ring8):
        """With s_i = 1, mu_i = lambda_i: every inequality is tight or slack."""
        report = interlacing_bounds(ring8, np.ones(8))
        assert report.holds

    def test_corollary_116(self, cube8):
        rng = np.random.default_rng(7)
        speeds = rng.uniform(1.0, 5.0, size=8)
        low, mu2, high = corollary_116_bounds(cube8, speeds)
        assert low - 1e-9 <= mu2 <= high + 1e-9
        lambda2 = algebraic_connectivity(cube8)
        assert low == pytest.approx(lambda2 / speeds.max())
        assert high == pytest.approx(lambda2 / speeds.min())


class TestRayleighBound:
    def test_margin_nonnegative(self, small_graphs, rng):
        """Lemma 1.14 on random zero-sum deviation vectors."""
        for graph in small_graphs:
            speeds = rng.uniform(1.0, 3.0, size=graph.num_vertices)
            for _ in range(5):
                e = rng.normal(size=graph.num_vertices)
                e -= e.mean()
                margin = rayleigh_lower_bound_check(graph, speeds, e)
                assert margin >= -1e-8

    def test_rejects_nonzero_sum(self, ring8):
        with pytest.raises(SpectralError):
            rayleigh_lower_bound_check(ring8, np.ones(8), np.ones(8))

    def test_tight_for_fiedler_direction(self, ring8):
        """Equality holds when e is the mu_2 eigenvector (uniform speeds)."""
        from repro.spectral.eigen import fiedler_vector

        vec = fiedler_vector(ring8)
        margin = rayleigh_lower_bound_check(ring8, np.ones(8), vec)
        assert margin == pytest.approx(0.0, abs=1e-8)
