"""Edge cases of the batch engines (uniform and weighted stacks).

ISSUE 2 satellite: the degenerate corners a vectorized engine gets wrong
first —

* ``R = 1`` degenerates to scalar behaviour (bitwise for the weighted
  kernel, law/contract-level for the uniform one);
* every replica already converged at round 0;
* an empty active mask after full retirement (no movement, no RNG
  consumption);
* zero-weight tasks: rejected on live slots, required on padding slots.
"""

from __future__ import annotations

import numpy as np
import pytest

from equivalence import run_both_engines
from repro.core.batch import BatchSimulator, run_protocol_batch
from repro.core.protocols import SelfishUniformProtocol, SelfishWeightedProtocol
from repro.core.stopping import NashStop
from repro.errors import ModelError
from repro.graphs.generators import cycle_graph, torus_graph
from repro.model.batch import BatchUniformState, BatchWeightedState
from repro.model.placement import place_weighted_random, random_placement
from repro.model.state import UniformState, WeightedState
from repro.utils.rng import make_rng, spawn_rngs


@pytest.fixture
def torus9():
    return torus_graph(3)


def weighted_factory(n, m):
    def factory(rng):
        weights = rng.uniform(0.2, 1.0, size=m)
        return WeightedState(place_weighted_random(m, n, rng), weights, np.ones(n))

    return factory


class TestSingleReplica:
    """R = 1 must degenerate to the scalar engine's behaviour."""

    def test_weighted_r1_bitwise_equals_scalar(self, torus9):
        """One-replica weighted batch == scalar run, same stream."""
        state = weighted_factory(9, 30)(make_rng(3))
        batch = BatchWeightedState.replicate(state, 1)
        protocol = SelfishWeightedProtocol()
        rng_batch, rng_scalar = make_rng(7), make_rng(7)
        scalar_state = state.copy()
        for _ in range(40):
            protocol.execute_round_batch(batch, torus9, [rng_batch], None)
            protocol.execute_round(scalar_state, torus9, rng_scalar)
        np.testing.assert_array_equal(
            batch.replica(0).task_nodes, scalar_state.task_nodes
        )

    def test_weighted_r1_measurement_equals_scalar(self, torus9):
        batch, scalar = run_both_engines(
            graph=torus9,
            protocol=SelfishWeightedProtocol(),
            state_factory=weighted_factory(9, 27),
            stopping=NashStop(),
            repetitions=1,
            max_rounds=20_000,
            seed=13,
        )
        np.testing.assert_array_equal(batch.rounds, scalar.rounds)

    def test_uniform_r1_runs_and_converges(self, torus9):
        n = torus9.num_vertices
        state = UniformState(random_placement(n, 54, make_rng(1)), np.ones(n))
        batch = BatchUniformState.replicate(state, 1)
        result = run_protocol_batch(
            torus9, SelfishUniformProtocol(), batch, NashStop(),
            max_rounds=20_000, seed=2,
        )
        assert result.num_replicas == 1
        assert result.all_converged
        assert int(batch.num_tasks[0]) == 54


class TestAllConvergedAtRoundZero:
    def test_uniform_balanced_start(self, torus9):
        n = torus9.num_vertices
        batch = BatchUniformState(np.full((4, n), 5, dtype=np.int64), np.ones(n))
        result = run_protocol_batch(
            torus9, SelfishUniformProtocol(), batch, NashStop(), max_rounds=50
        )
        assert result.all_converged
        np.testing.assert_array_equal(result.stop_rounds, 0)
        assert result.rounds_executed == 0

    def test_weighted_balanced_start(self, torus9):
        n = torus9.num_vertices
        # One unit-ish task per node: already a threshold state.
        nodes = np.tile(np.arange(n, dtype=np.int64), (3, 1))
        weights = np.full((3, n), 0.9)
        batch = BatchWeightedState(nodes, weights, np.ones(n))
        result = run_protocol_batch(
            torus9, SelfishWeightedProtocol(), batch, NashStop(), max_rounds=50
        )
        assert result.all_converged
        np.testing.assert_array_equal(result.stop_rounds, 0)
        assert result.rounds_executed == 0


class TestEmptyActiveMask:
    """A fully retired stack: no movement and no randomness consumed."""

    @pytest.mark.parametrize("kind", ["uniform", "weighted"])
    def test_no_moves_no_rng_consumption(self, torus9, kind):
        n = torus9.num_vertices
        if kind == "uniform":
            counts = np.zeros((3, n), dtype=np.int64)
            counts[:, 0] = 100
            batch = BatchUniformState(counts, np.ones(n))
            protocol = SelfishUniformProtocol()
            snapshot = batch.counts.copy()
        else:
            weights = np.full((3, 20), 0.5)
            nodes = np.zeros((3, 20), dtype=np.int64)
            batch = BatchWeightedState(nodes, weights, np.ones(n))
            protocol = SelfishWeightedProtocol()
            snapshot = batch.task_nodes.copy()
        rngs = spawn_rngs(5, 3)
        probes = [rng.bit_generator.state for rng in rngs]
        summary = protocol.execute_round_batch(
            batch, torus9, rngs, np.zeros(3, dtype=bool)
        )
        np.testing.assert_array_equal(summary.tasks_moved, 0)
        np.testing.assert_array_equal(summary.weight_moved, 0.0)
        assert not np.any(summary.saturated)
        if kind == "uniform":
            np.testing.assert_array_equal(batch.counts, snapshot)
        else:
            np.testing.assert_array_equal(batch.task_nodes, snapshot)
        for rng, probe in zip(rngs, probes):
            assert rng.bit_generator.state == probe, "retired replica drew randomness"

    def test_simulator_retires_all_then_stops(self, torus9):
        """Once every replica converges the loop exits immediately."""
        n = torus9.num_vertices
        batch, rngs = (
            BatchUniformState(np.full((2, n), 4, dtype=np.int64), np.ones(n)),
            spawn_rngs(0, 2),
        )
        simulator = BatchSimulator(torus9, SelfishUniformProtocol())
        result = simulator.run(
            batch, stopping=NashStop(), max_rounds=10_000, rngs=rngs
        )
        assert result.rounds_executed == 0
        assert "stopping rule fired" in result.stop_reason


class TestZeroWeightTasks:
    def test_live_zero_weight_rejected(self):
        nodes = np.array([[0, 1]])
        weights = np.array([[0.5, 0.0]])  # zero weight on a live slot
        with pytest.raises(ModelError):
            BatchWeightedState(nodes, weights, np.ones(3))

    def test_padding_must_be_weightless(self):
        nodes = np.array([[0, -1]])
        weights = np.array([[0.5, 0.3]])  # padding slot carrying weight
        with pytest.raises(ModelError):
            BatchWeightedState(nodes, weights, np.ones(3))

    def test_padding_weightless_accepted_and_inert(self, torus9):
        n = torus9.num_vertices
        nodes = np.array([[0, 0, -1], [0, 0, 0]], dtype=np.int64)
        weights = np.array([[0.5, 0.7, 0.0], [0.4, 0.6, 0.8]])
        batch = BatchWeightedState(nodes, weights, np.ones(n))
        np.testing.assert_array_equal(batch.num_tasks, [2, 3])
        np.testing.assert_array_equal(
            batch.total_task_weight, [1.2, 0.4 + 0.6 + 0.8]
        )
        protocol = SelfishWeightedProtocol()
        for _ in range(10):
            protocol.execute_round_batch(batch, torus9, spawn_rngs(1, 2), None)
        assert batch.task_nodes[0, 2] == -1
        assert batch.task_weights[0, 2] == 0.0

    def test_empty_replica_rows_allowed(self, torus9):
        """A replica with zero tasks trivially converges and stays empty."""
        n = torus9.num_vertices
        states = [
            WeightedState([0] * 12, [0.5] * 12, np.ones(n)),
            WeightedState([], [], np.ones(n)),
        ]
        batch = BatchWeightedState.from_states(states)
        np.testing.assert_array_equal(batch.num_tasks, [12, 0])
        result = run_protocol_batch(
            torus9, SelfishWeightedProtocol(), batch, NashStop(),
            max_rounds=20_000, seed=4,
        )
        assert result.all_converged
        assert result.stop_rounds[1] == 0


class TestEmptyMigrationRoundRegression:
    """ISSUE 2 satellite: empty-migration rounds report exact zeros.

    ``moved_weight`` must be the exact float ``0.0`` (not a NaN or a
    numpy scalar summed over an empty index array) and the batch path
    must share the same semantics per replica.
    """

    def test_scalar_weighted_empty_round(self):
        graph = cycle_graph(4)
        # Perfectly balanced: no edge satisfies the migration condition.
        state = WeightedState([0, 1, 2, 3], [1.0] * 4, np.ones(4))
        summary = SelfishWeightedProtocol().execute_round(
            state, graph, make_rng(0)
        )
        assert summary.tasks_moved == 0
        assert isinstance(summary.tasks_moved, int)
        assert summary.weight_moved == 0.0
        assert isinstance(summary.weight_moved, float)
        assert summary.saturated is False

    def test_scalar_weighted_no_tasks(self):
        graph = cycle_graph(4)
        state = WeightedState([], [], np.ones(4))
        summary = SelfishWeightedProtocol().execute_round(
            state, graph, make_rng(0)
        )
        assert summary.tasks_moved == 0
        assert summary.weight_moved == 0.0

    def test_batch_weighted_empty_round(self):
        graph = cycle_graph(4)
        nodes = np.tile(np.arange(4, dtype=np.int64), (3, 1))
        weights = np.ones((3, 4))
        batch = BatchWeightedState(nodes, weights, np.ones(4))
        summary = SelfishWeightedProtocol().execute_round_batch(
            batch, graph, spawn_rngs(0, 3), None
        )
        np.testing.assert_array_equal(summary.tasks_moved, 0)
        assert summary.tasks_moved.dtype == np.int64
        np.testing.assert_array_equal(summary.weight_moved, 0.0)
        assert summary.weight_moved.dtype == np.float64
        assert not np.any(summary.saturated)

    def test_batch_matches_scalar_on_empty_round(self):
        """Shared semantics: both paths report identical zero summaries."""
        graph = cycle_graph(4)
        state = WeightedState([0, 1, 2, 3], [1.0] * 4, np.ones(4))
        batch = BatchWeightedState.replicate(state, 2)
        protocol = SelfishWeightedProtocol()
        batch_summary = protocol.execute_round_batch(
            batch, graph, [make_rng(1), make_rng(2)], None
        )
        for replica, seed in enumerate((1, 2)):
            scalar_summary = protocol.execute_round(
                state.copy(), graph, make_rng(seed)
            )
            assert scalar_summary.tasks_moved == batch_summary.tasks_moved[replica]
            assert scalar_summary.weight_moved == batch_summary.weight_moved[replica]
            assert scalar_summary.saturated == bool(batch_summary.saturated[replica])
