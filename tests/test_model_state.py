"""Tests for repro.model.state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, SpeedError
from repro.model.state import UniformState, WeightedState


class TestUniformState:
    def test_basic_quantities(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        assert state.num_nodes == 3
        assert state.num_tasks == 6
        assert state.total_weight == 6.0
        assert state.total_speed == 4.0
        assert state.average_load == pytest.approx(1.5)
        np.testing.assert_allclose(state.loads, [4.0, 0.0, 1.0])

    def test_target_and_deviation(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        np.testing.assert_allclose(state.target_weights, [1.5, 1.5, 3.0])
        np.testing.assert_allclose(state.deviation, [2.5, -1.5, -1.0])
        assert state.deviation.sum() == pytest.approx(0.0)

    def test_max_load_difference(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        assert state.max_load_difference == pytest.approx(2.5)

    def test_float_counts_coerced_when_integral(self):
        state = UniformState(np.array([1.0, 2.0]), [1.0, 1.0])
        assert state.counts.dtype == np.int64

    def test_non_integral_counts_rejected(self):
        with pytest.raises(ModelError):
            UniformState([1.5, 2.0], [1.0, 1.0])

    def test_negative_counts_rejected(self):
        with pytest.raises(ModelError):
            UniformState([-1, 2], [1.0, 1.0])

    def test_bad_speeds_rejected(self):
        with pytest.raises(SpeedError):
            UniformState([1, 2], [1.0, 0.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(Exception):
            UniformState([1, 2], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            UniformState([], [])


class TestUniformStateMoves:
    def test_simple_move(self):
        state = UniformState([5, 0], [1.0, 1.0])
        state.apply_moves([0], [1], [3])
        np.testing.assert_array_equal(state.counts, [2, 3])

    def test_simultaneous_exchange(self):
        """A node may send and receive in the same concurrent round."""
        state = UniformState([3, 3], [1.0, 1.0])
        state.apply_moves([0, 1], [1, 0], [3, 3])
        np.testing.assert_array_equal(state.counts, [3, 3])

    def test_mass_conserved(self, rng):
        state = UniformState([10, 10, 10, 10], np.ones(4))
        state.apply_moves([0, 1, 2], [1, 2, 3], [4, 5, 6])
        assert state.num_tasks == 40

    def test_overdraw_rejected(self):
        state = UniformState([2, 0], [1.0, 1.0])
        with pytest.raises(ModelError, match="negative"):
            state.apply_moves([0], [1], [5])

    def test_negative_amount_rejected(self):
        state = UniformState([2, 0], [1.0, 1.0])
        with pytest.raises(ModelError):
            state.apply_moves([0], [1], [-1])

    def test_misaligned_arrays_rejected(self):
        state = UniformState([2, 0], [1.0, 1.0])
        with pytest.raises(ModelError):
            state.apply_moves([0], [1, 0], [1])

    def test_copy_independent(self):
        state = UniformState([5, 0], [1.0, 1.0])
        clone = state.copy()
        state.apply_moves([0], [1], [2])
        np.testing.assert_array_equal(clone.counts, [5, 0])

    def test_repr(self):
        assert "m=5" in repr(UniformState([5, 0], [1.0, 1.0]))


class TestWeightedState:
    def test_node_weights_from_assignment(self):
        state = WeightedState([0, 0, 1], [0.5, 0.25, 1.0], [1.0, 2.0])
        np.testing.assert_allclose(state.node_weights, [0.75, 1.0])
        np.testing.assert_allclose(state.loads, [0.75, 0.5])
        assert state.num_tasks == 3
        assert state.total_weight == pytest.approx(1.75)

    def test_tasks_on(self):
        state = WeightedState([0, 1, 0], [0.5, 0.5, 0.5], [1.0, 1.0])
        np.testing.assert_array_equal(state.tasks_on(0), [0, 2])
        np.testing.assert_array_equal(state.tasks_on(1), [1])

    def test_tasks_on_bad_node(self):
        state = WeightedState([0], [0.5], [1.0, 1.0])
        with pytest.raises(ModelError):
            state.tasks_on(5)

    def test_bad_location_rejected(self):
        with pytest.raises(ModelError):
            WeightedState([2], [0.5], [1.0, 1.0])

    def test_bad_weight_rejected(self):
        with pytest.raises(ModelError):
            WeightedState([0], [1.5], [1.0, 1.0])

    def test_weights_read_only(self):
        state = WeightedState([0], [0.5], [1.0, 1.0])
        with pytest.raises(ValueError):
            state.task_weights[0] = 0.9


class TestWeightedStateMoves:
    def test_move_updates_incrementally(self):
        state = WeightedState([0, 0], [0.5, 0.25], [1.0, 1.0])
        state.apply_moves([1], [1])
        np.testing.assert_allclose(state.node_weights, [0.5, 0.25])
        np.testing.assert_array_equal(state.task_nodes, [0, 1])

    def test_total_weight_conserved(self, weighted_state_ring8, rng):
        before = weighted_state_ring8.total_weight
        tasks = rng.choice(60, size=10, replace=False)
        destinations = rng.integers(0, 8, size=10)
        weighted_state_ring8.apply_moves(tasks, destinations)
        assert weighted_state_ring8.total_weight == pytest.approx(before)

    def test_duplicate_task_rejected(self):
        state = WeightedState([0, 0], [0.5, 0.5], [1.0, 1.0])
        with pytest.raises(ModelError, match="at most once"):
            state.apply_moves([0, 0], [1, 1])

    def test_empty_moves_noop(self):
        state = WeightedState([0], [0.5], [1.0, 1.0])
        state.apply_moves([], [])
        np.testing.assert_array_equal(state.task_nodes, [0])

    def test_out_of_range_task(self):
        state = WeightedState([0], [0.5], [1.0, 1.0])
        with pytest.raises(ModelError):
            state.apply_moves([5], [1])

    def test_out_of_range_destination(self):
        state = WeightedState([0], [0.5], [1.0, 1.0])
        with pytest.raises(ModelError):
            state.apply_moves([0], [7])

    def test_rebuild_matches_incremental(self, weighted_state_ring8, rng):
        for _ in range(50):
            task = int(rng.integers(0, 60))
            destination = int(rng.integers(0, 8))
            weighted_state_ring8.apply_moves([task], [destination])
        incremental = weighted_state_ring8.node_weights.copy()
        weighted_state_ring8.rebuild_node_weights()
        np.testing.assert_allclose(
            weighted_state_ring8.node_weights, incremental, atol=1e-9
        )

    def test_copy_independent(self):
        state = WeightedState([0, 0], [0.5, 0.5], [1.0, 1.0])
        clone = state.copy()
        state.apply_moves([0], [1])
        np.testing.assert_array_equal(clone.task_nodes, [0, 0])

    def test_repr(self):
        assert "m=2" in repr(WeightedState([0, 0], [0.5, 0.5], [1.0, 1.0]))


class TestReadOnlyViews:
    """The exposed state arrays must not be writable (regression:

    the docstrings promised read-only views but handed out the internal
    writable arrays)."""

    def test_uniform_counts_read_only(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            state.counts[0] = 99
        assert state.counts[0] == 4

    def test_uniform_speeds_read_only(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            state.speeds[0] = 99.0

    def test_weighted_task_nodes_read_only(self):
        state = WeightedState([0, 1], [0.5, 0.5], [1.0, 1.0])
        with pytest.raises(ValueError):
            state.task_nodes[0] = 1

    def test_weighted_speeds_read_only(self):
        state = WeightedState([0, 1], [0.5, 0.5], [1.0, 1.0])
        with pytest.raises(ValueError):
            state.speeds[:] = 2.0

    def test_apply_moves_still_works_after_view_access(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        _ = state.counts  # materialize a read-only view first
        state.apply_moves([0], [1], [2])
        np.testing.assert_array_equal(state.counts, [2, 2, 2])


class TestReplaceCounts:
    def test_replaces_and_validates(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        state.replace_counts([1, 2, 3])
        np.testing.assert_array_equal(state.counts, [1, 2, 3])
        assert state.num_tasks == 6

    def test_rejects_negative(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        with pytest.raises(ModelError):
            state.replace_counts([1, -1, 3])

    def test_rejects_wrong_length(self):
        state = UniformState([4, 0, 2], [1.0, 1.0, 2.0])
        with pytest.raises(ModelError):
            state.replace_counts([1, 2])
