"""Streaming observable recording: reducer correctness and flat memory.

The streaming recorder must be *observationally equivalent* to the full
``(T + 1, R)`` recording — every summary statistic at ``thin_every=1``
equals the same reduction of the full arrays — while keeping the number
of resident chunks constant in the horizon (the bounded-memory
guarantee of the million-task replay path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.streaming import ObservableSummary, RunningMoments
from repro.errors import ValidationError
from repro.graphs import torus_graph
from repro.model import UniformState, random_placement
from repro.scenarios import (
    ScenarioRunner,
    StreamingRecording,
    StreamingScenarioResult,
)
from repro.workloads import build_workload, compile_trace


def make_runner(tasks="weighted", horizon=24, n=9, m=54):
    from repro.experiments.scenario_cells import _scenario_setup

    graph = torus_graph(3)
    trace = build_workload(
        "mmpp-flash", num_nodes=n, horizon=horizon, seed=13, initial_tasks=m
    )
    protocol, target, factory = _scenario_setup(graph, tasks, m)
    runner = ScenarioRunner(
        graph, protocol, compile_trace(trace), target=target
    )
    return runner, factory, horizon


OBSERVABLES = (
    "psi0",
    "max_load_difference",
    "nash_violation",
    "total_weight",
    "num_tasks",
    "target_satisfied",
)


def full_array(result, name):
    values = getattr(result, name)
    return np.asarray(values, dtype=np.float64)


class TestRunningMoments:
    def test_matches_single_pass(self):
        rng = np.random.default_rng(5)
        rows = rng.normal(size=(100, 4))
        moments = RunningMoments(4)
        for start in range(0, 100, 7):  # uneven chunking
            moments.update(rows[start : start + 7])
        summary = moments.summary()
        assert summary.count == 100
        np.testing.assert_allclose(summary.mean, rows.mean(axis=0))
        np.testing.assert_allclose(summary.variance, rows.var(axis=0))
        np.testing.assert_array_equal(summary.minimum, rows.min(axis=0))
        np.testing.assert_array_equal(summary.maximum, rows.max(axis=0))
        np.testing.assert_array_equal(summary.last, rows[-1])

    def test_empty_chunk_is_noop(self):
        moments = RunningMoments(3)
        moments.update(np.empty((0, 3)))
        assert moments.count == 0

    def test_shape_validation(self):
        moments = RunningMoments(3)
        with pytest.raises(ValidationError):
            moments.update(np.zeros((5, 4)))
        with pytest.raises(ValidationError):
            moments.update(np.zeros(5))

    def test_empty_summary_raises(self):
        with pytest.raises(ValidationError):
            RunningMoments(2).summary()

    def test_bad_replica_count(self):
        with pytest.raises(ValidationError):
            RunningMoments(0)


class TestStreamingRecordingOptions:
    def test_defaults(self):
        options = StreamingRecording()
        assert options.thin_every == 1
        assert options.chunk_rounds == 256

    def test_validation(self):
        with pytest.raises(ValidationError):
            StreamingRecording(thin_every=0)
        with pytest.raises(ValidationError):
            StreamingRecording(chunk_rounds=0)


class TestStreamingEqualsFull:
    """At thin_every=1 every streamed statistic equals the full-mode
    reduction — same rows, same values, different memory."""

    @pytest.mark.parametrize("tasks", ["uniform", "weighted"])
    def test_batch_summaries_match_full_recording(self, tasks):
        runner, factory, horizon = make_runner(tasks)
        full = runner.run_ensemble(
            factory, 5, horizon, seed=3, engine="batch"
        )
        runner2, factory2, _ = make_runner(tasks)
        streamed = runner2.run_ensemble(
            factory2, 5, horizon, seed=3, engine="batch",
            recording=StreamingRecording(thin_every=1, chunk_rounds=7),
        )
        assert isinstance(streamed, StreamingScenarioResult)
        assert streamed.rows_recorded == horizon + 1
        np.testing.assert_array_equal(
            streamed.recorded_rounds, np.arange(horizon + 1)
        )
        for name in OBSERVABLES:
            rows = full_array(full, name)
            summary = streamed.observables[name]
            np.testing.assert_allclose(
                summary.mean, rows.mean(axis=0), err_msg=name
            )
            np.testing.assert_allclose(
                summary.variance, rows.var(axis=0), err_msg=name
            )
            np.testing.assert_array_equal(
                summary.minimum, rows.min(axis=0), err_msg=name
            )
            np.testing.assert_array_equal(
                summary.maximum, rows.max(axis=0), err_msg=name
            )
            np.testing.assert_array_equal(
                summary.last, rows[-1], err_msg=name
            )
            np.testing.assert_allclose(
                streamed.series[name], rows.mean(axis=1), err_msg=name
            )
        np.testing.assert_array_equal(streamed.lambda2, full.lambda2)
        np.testing.assert_array_equal(streamed.connected, full.connected)
        # Streaming keeps per-name event totals, not the chronological
        # log — they must equal the full-mode log's aggregation.
        names = {record.name for record in full.events}
        assert set(streamed.event_totals) == names
        for name in names:
            records = full.events_named(name)
            totals = streamed.event_totals[name]
            assert totals.applications == len(records)
            np.testing.assert_array_equal(
                totals.tasks_added,
                np.sum([r.tasks_added for r in records], axis=0),
            )
            np.testing.assert_array_equal(
                totals.tasks_removed,
                np.sum([r.tasks_removed for r in records], axis=0),
            )
            np.testing.assert_array_equal(
                totals.tasks_relocated,
                np.sum([r.tasks_relocated for r in records], axis=0),
            )

    def test_scalar_streaming_matches_full(self):
        runner, _, horizon = make_runner("uniform")
        state_full = UniformState(
            random_placement(9, 54, np.random.default_rng(2)), np.ones(9)
        )
        state_stream = UniformState(
            state_full.counts.copy(), state_full.speeds.copy()
        )
        full = runner.run(state_full, horizon, rng=11)
        runner2, _, _ = make_runner("uniform")
        streamed = runner2.run(
            state_stream, horizon, rng=11,
            recording=StreamingRecording(thin_every=1, chunk_rounds=5),
        )
        assert streamed.engine == "scalar"
        for name in OBSERVABLES:
            rows = full_array(full, name)
            np.testing.assert_allclose(
                streamed.observables[name].mean, rows.mean(axis=0),
                err_msg=name,
            )
            np.testing.assert_array_equal(
                streamed.observables[name].last, rows[-1], err_msg=name
            )


class TestThinning:
    def test_thinning_keeps_first_and_final_rows(self):
        runner, factory, horizon = make_runner("uniform", horizon=23)
        streamed = runner.run_ensemble(
            factory, 3, horizon, seed=7, engine="batch",
            recording=StreamingRecording(thin_every=4),
        )
        expected = [
            row for row in range(horizon + 1)
            if row % 4 == 0 or row == horizon
        ]
        np.testing.assert_array_equal(streamed.recorded_rounds, expected)
        assert streamed.rows_recorded == len(expected)
        assert streamed.observables["psi0"].count == len(expected)

    def test_thinned_rows_match_full_rows(self):
        runner, factory, horizon = make_runner("weighted")
        full = runner.run_ensemble(
            factory, 4, horizon, seed=9, engine="batch"
        )
        runner2, factory2, _ = make_runner("weighted")
        streamed = runner2.run_ensemble(
            factory2, 4, horizon, seed=9, engine="batch",
            recording=StreamingRecording(thin_every=5),
        )
        kept = streamed.recorded_rounds
        np.testing.assert_allclose(
            streamed.series["psi0"], full.psi0[kept].mean(axis=1)
        )
        np.testing.assert_array_equal(
            streamed.observables["num_tasks"].last, full.num_tasks[-1]
        )


class TestBoundedMemory:
    def test_peak_resident_chunks_independent_of_horizon(self):
        """The bounded-memory guarantee: a 10x longer trace flushes 10x
        more chunks but never holds more of them resident."""
        peaks, flushed = [], []
        for horizon in (20, 200):
            runner, factory, _ = make_runner("uniform", horizon=horizon)
            streamed = runner.run_ensemble(
                factory, 3, horizon, seed=5, engine="batch",
                recording=StreamingRecording(thin_every=1, chunk_rounds=16),
            )
            peaks.append(streamed.peak_resident_chunks)
            flushed.append(streamed.chunks_flushed)
        assert peaks[0] == peaks[1] == len(OBSERVABLES)
        assert flushed[1] > flushed[0]
        assert flushed[1] == -(-201 // 16)  # ceil(rows / chunk_rounds)

    def test_partial_final_chunk_is_flushed(self):
        runner, factory, horizon = make_runner("uniform", horizon=10)
        streamed = runner.run_ensemble(
            factory, 2, horizon, seed=5, engine="batch",
            recording=StreamingRecording(chunk_rounds=256),
        )
        assert streamed.chunks_flushed == 1  # 11 rows < one chunk
        assert streamed.observables["psi0"].count == 11


class TestStreamingRefusals:
    def test_replica_window_refused(self):
        runner, factory, horizon = make_runner("weighted")
        with pytest.raises(ValidationError, match="window"):
            runner.run_ensemble(
                factory, 4, horizon, seed=1, engine="batch",
                replica_offset=0, replica_count=2,
                recording=StreamingRecording(),
            )

    def test_scalar_engine_ensemble_refused(self):
        runner, factory, horizon = make_runner("weighted")
        with pytest.raises(ValidationError, match="batch engine"):
            runner.run_ensemble(
                factory, 4, horizon, seed=1, engine="scalar",
                recording=StreamingRecording(),
            )
