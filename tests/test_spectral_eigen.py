"""Tests for repro.spectral.eigen."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError, SpectralError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    from_edges,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
    torus_graph,
)
from repro.spectral.eigen import (
    algebraic_connectivity,
    fiedler_vector,
    generalized_lambda2,
    generalized_spectrum,
    laplacian_spectrum,
    spectral_gap_ratio,
)
from repro.spectral.laplacian import laplacian_matrix


class TestLaplacianSpectrum:
    def test_complete_graph_spectrum(self):
        """K_n has spectrum {0, n, ..., n}."""
        spectrum = laplacian_spectrum(complete_graph(6))
        assert spectrum[0] == pytest.approx(0.0, abs=1e-10)
        np.testing.assert_allclose(spectrum[1:], 6.0, atol=1e-9)

    def test_star_spectrum(self):
        """S_n has spectrum {0, 1 (n-2 times), n}."""
        spectrum = laplacian_spectrum(star_graph(6))
        assert spectrum[0] == pytest.approx(0.0, abs=1e-10)
        np.testing.assert_allclose(spectrum[1:5], 1.0, atol=1e-9)
        assert spectrum[5] == pytest.approx(6.0, abs=1e-9)

    def test_cycle_eigenvalues(self):
        """C_n eigenvalues are 2 - 2cos(2 pi k/n)."""
        n = 8
        spectrum = laplacian_spectrum(cycle_graph(n))
        expected = np.sort([2.0 - 2.0 * math.cos(2.0 * math.pi * k / n) for k in range(n)])
        np.testing.assert_allclose(spectrum, expected, atol=1e-9)

    def test_trace_equals_degree_sum(self, small_graphs):
        for graph in small_graphs:
            spectrum = laplacian_spectrum(graph)
            assert spectrum.sum() == pytest.approx(float(graph.degrees.sum()), rel=1e-9)

    def test_zero_multiplicity_counts_components(self):
        graph = from_edges(5, [(0, 1), (2, 3)])  # 3 components
        spectrum = laplacian_spectrum(graph)
        assert int(np.count_nonzero(spectrum < 1e-9)) == 3


class TestAlgebraicConnectivity:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (complete_graph(7), 7.0),
            (cycle_graph(10), 2.0 - 2.0 * math.cos(2.0 * math.pi / 10)),
            (path_graph(10), 2.0 - 2.0 * math.cos(math.pi / 10)),
            (hypercube_graph(4), 2.0),
            (star_graph(9), 1.0),
        ],
    )
    def test_known_values(self, graph, expected):
        assert algebraic_connectivity(graph) == pytest.approx(expected, rel=1e-9)

    def test_torus_value(self):
        k = 5
        expected = 2.0 - 2.0 * math.cos(2.0 * math.pi / k)
        assert algebraic_connectivity(torus_graph(k)) == pytest.approx(expected, rel=1e-9)

    def test_disconnected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            algebraic_connectivity(from_edges(4, [(0, 1), (2, 3)]))

    def test_single_vertex_raises(self):
        with pytest.raises(DisconnectedGraphError):
            algebraic_connectivity(from_edges(1, []))


class TestFiedlerVector:
    def test_is_eigenvector(self, path5):
        lap = laplacian_matrix(path5)
        vec = fiedler_vector(path5)
        lambda2 = algebraic_connectivity(path5)
        np.testing.assert_allclose(lap @ vec, lambda2 * vec, atol=1e-8)

    def test_orthogonal_to_ones(self, ring8):
        vec = fiedler_vector(ring8)
        assert float(vec.sum()) == pytest.approx(0.0, abs=1e-8)

    def test_path_fiedler_monotone(self):
        """The path's Fiedler vector is monotone along the path."""
        vec = fiedler_vector(path_graph(9))
        diffs = np.diff(vec)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_disconnected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            fiedler_vector(from_edges(4, [(0, 1), (2, 3)]))


class TestGeneralizedSpectrum:
    def test_uniform_speeds_match_laplacian(self, torus9):
        gen = generalized_spectrum(torus9, np.ones(9))
        lap = laplacian_spectrum(torus9)
        np.testing.assert_allclose(gen, lap, atol=1e-9)

    def test_all_nonnegative(self, small_graphs, rng):
        for graph in small_graphs:
            speeds = rng.uniform(1.0, 3.0, size=graph.num_vertices)
            spectrum = generalized_spectrum(graph, speeds)
            assert spectrum.min() >= 0.0

    def test_smallest_is_zero(self, cube8, rng):
        speeds = rng.uniform(1.0, 3.0, size=8)
        spectrum = generalized_spectrum(cube8, speeds)
        assert spectrum[0] == pytest.approx(0.0, abs=1e-9)

    def test_mu2_positive_connected(self, ring8, rng):
        speeds = rng.uniform(1.0, 3.0, size=8)
        assert generalized_lambda2(ring8, speeds) > 0

    def test_mu2_scaling_by_constant_speed(self, ring8):
        """With s_i = c for all i, mu_2 = lambda_2 / c."""
        lambda2 = algebraic_connectivity(ring8)
        mu2 = generalized_lambda2(ring8, np.full(8, 2.0))
        assert mu2 == pytest.approx(lambda2 / 2.0, rel=1e-9)

    def test_disconnected_raises(self):
        graph = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            generalized_lambda2(graph, np.ones(4))


class TestSpectralGapRatio:
    def test_complete(self):
        graph = complete_graph(8)
        assert spectral_gap_ratio(graph) == pytest.approx(7.0 / 8.0, rel=1e-9)

    def test_ring_grows_quadratically(self):
        small = spectral_gap_ratio(cycle_graph(8))
        large = spectral_gap_ratio(cycle_graph(16))
        assert large / small == pytest.approx(4.0, rel=0.15)


class TestNonStrictDisconnected:
    """``strict=False``: disconnected graphs report, they don't raise.

    The live topology trace evaluates the spectrum every round while
    partitions are in effect, so the non-strict path must map a
    disconnected graph to ``lambda_2 = 0`` and ``gap_ratio = inf``
    instead of :class:`DisconnectedGraphError`."""

    def test_disconnected_lambda2_zero(self):
        graph = from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        assert algebraic_connectivity(graph, strict=False) == 0.0

    def test_disconnected_gap_inf(self):
        graph = from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        assert spectral_gap_ratio(graph, strict=False) == math.inf

    def test_single_vertex_non_strict(self):
        graph = from_edges(1, [])
        assert algebraic_connectivity(graph, strict=False) == 0.0
        assert spectral_gap_ratio(graph, strict=False) == math.inf

    def test_strict_remains_default(self):
        graph = from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        with pytest.raises(DisconnectedGraphError):
            algebraic_connectivity(graph)
        with pytest.raises(DisconnectedGraphError):
            spectral_gap_ratio(graph)

    def test_connected_values_identical(self, small_graphs):
        for graph in small_graphs:
            assert algebraic_connectivity(graph, strict=False) == (
                algebraic_connectivity(graph)
            )
            assert spectral_gap_ratio(graph, strict=False) == (
                spectral_gap_ratio(graph)
            )
