"""Tests for repro.core.potentials (Definitions 3.2-3.4, 3.19, Obs 3.16/3.20)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.potentials import (
    max_load_difference,
    phi_potential,
    potential_summary,
    psi0_potential,
    psi1_potential,
)
from repro.errors import ValidationError
from repro.model.state import UniformState, WeightedState


def make_state(counts, speeds):
    return UniformState(counts, speeds)


class TestPhi:
    def test_phi0_explicit(self):
        state = make_state([3, 1], [1.0, 1.0])
        assert phi_potential(state, 0) == pytest.approx(9.0 + 1.0)

    def test_phi1_explicit(self):
        state = make_state([3, 1], [1.0, 1.0])
        assert phi_potential(state, 1) == pytest.approx(12.0 + 2.0)

    def test_speeds_divide(self):
        state = make_state([4, 0], [2.0, 1.0])
        assert phi_potential(state, 0) == pytest.approx(16.0 / 2.0)

    def test_invalid_r(self):
        state = make_state([1, 1], [1.0, 1.0])
        with pytest.raises(ValidationError):
            phi_potential(state, 2)


class TestPsi0:
    def test_balanced_state_zero(self):
        state = make_state([5, 5, 5], [1.0, 1.0, 1.0])
        assert psi0_potential(state) == pytest.approx(0.0, abs=1e-12)

    def test_equals_phi0_minus_constant(self):
        """Definition 3.3: Psi_0 = Phi_0 - W^2/S."""
        state = make_state([7, 2, 0, 3], [1.0, 2.0, 1.0, 3.0])
        w = state.total_weight
        expected = phi_potential(state, 0) - w * w / state.total_speed
        assert psi0_potential(state) == pytest.approx(expected, rel=1e-12)

    def test_equals_generalized_inner_product(self):
        """Lemma 3.6 (2): Psi_0 = <e, e>_S."""
        from repro.spectral.inner_product import s_dot

        state = make_state([7, 2, 0, 3], [1.0, 2.0, 1.0, 3.0])
        e = state.deviation
        assert psi0_potential(state) == pytest.approx(s_dot(e, e, state.speeds))

    def test_nonnegative(self, rng):
        for _ in range(20):
            counts = rng.integers(0, 30, size=6)
            speeds = rng.uniform(1.0, 4.0, size=6)
            assert psi0_potential(make_state(counts, speeds)) >= 0.0

    def test_adversarial_upper_bound(self):
        """Psi_0(X_0) <= m^2 for any start (used in Lemma 3.15's proof)."""
        state = make_state([100, 0, 0, 0], [1.0, 1.0, 1.0, 1.0])
        assert psi0_potential(state) <= 100.0**2

    def test_weighted_state_supported(self, weighted_state_ring8):
        value = psi0_potential(weighted_state_ring8)
        e = weighted_state_ring8.deviation
        expected = float(np.sum(e * e / weighted_state_ring8.speeds))
        assert value == pytest.approx(expected)


class TestPsi1:
    def test_nonnegative_on_random_states(self, rng):
        """Observation 3.20 (2)."""
        for _ in range(50):
            counts = rng.integers(0, 20, size=5)
            speeds = rng.uniform(1.0, 3.0, size=5)
            assert psi1_potential(make_state(counts, speeds)) >= 0.0

    def test_definition_319_identity(self, rng):
        """Psi_1 = Phi_1 - W^2/S - W n/S + n/4 (1/s_h - 1/s_a)."""
        counts = rng.integers(0, 25, size=6)
        speeds = rng.uniform(1.0, 4.0, size=6)
        state = make_state(counts, speeds)
        n = 6
        w = state.total_weight
        total_speed = state.total_speed
        harmonic = n / np.sum(1.0 / speeds)
        arithmetic = total_speed / n
        expected = (
            phi_potential(state, 1)
            - w * w / total_speed
            - w * n / total_speed
            + n / 4.0 * (1.0 / harmonic - 1.0 / arithmetic)
        )
        assert psi1_potential(state) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_observation_320_3(self, rng):
        """Psi_1 = Psi_0 + sum e_i/s_i + n/4 (1/s_h - 1/s_a)."""
        counts = rng.integers(0, 25, size=6)
        speeds = rng.uniform(1.0, 4.0, size=6)
        state = make_state(counts, speeds)
        n = 6
        harmonic = n / np.sum(1.0 / speeds)
        arithmetic = state.total_speed / n
        expected = (
            psi0_potential(state)
            + float(np.sum(state.deviation / speeds))
            + n / 4.0 * (1.0 / harmonic - 1.0 / arithmetic)
        )
        assert psi1_potential(state) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_uniform_speeds_minimum(self):
        """For s = 1: Psi_1 = sum (e_i + 1/2)^2 - n/4, zero when e_i = 0."""
        state = make_state([5, 5, 5, 5], np.ones(4))
        assert psi1_potential(state) == pytest.approx(0.0, abs=1e-12)


class TestLDelta:
    def test_explicit(self):
        state = make_state([6, 0, 0], [1.0, 1.0, 1.0])
        # average load 2: deviations 4, -2, -2.
        assert max_load_difference(state) == pytest.approx(4.0)

    def test_observation_316(self, rng):
        """L_Delta^2 <= Psi_0 <= S L_Delta^2."""
        for _ in range(30):
            counts = rng.integers(0, 40, size=7)
            speeds = rng.uniform(1.0, 4.0, size=7)
            state = make_state(counts, speeds)
            psi0 = psi0_potential(state)
            l_delta = max_load_difference(state)
            assert l_delta**2 <= psi0 + 1e-9
            assert psi0 <= state.total_speed * l_delta**2 + 1e-9


class TestSummary:
    def test_matches_individual(self):
        state = make_state([5, 1, 0], [1.0, 2.0, 1.0])
        summary = potential_summary(state)
        assert summary.phi0 == pytest.approx(phi_potential(state, 0))
        assert summary.phi1 == pytest.approx(phi_potential(state, 1))
        assert summary.psi0 == pytest.approx(psi0_potential(state))
        assert summary.psi1 == pytest.approx(psi1_potential(state))
        assert summary.l_delta == pytest.approx(max_load_difference(state))
