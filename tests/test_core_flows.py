"""Tests for repro.core.flows (Definitions 3.1 / 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.flows import (
    default_alpha,
    expected_flows,
    flow_matrix,
    migration_probabilities,
)
from repro.errors import ProtocolError
from repro.graphs.generators import cycle_graph, path_graph
from repro.model.state import UniformState


class TestDefaultAlpha:
    def test_four_smax(self):
        assert default_alpha(3.0) == 12.0

    def test_granularity_raises_alpha(self):
        assert default_alpha(2.0, 0.5) == 16.0

    def test_granularity_above_one_rejected(self):
        with pytest.raises(ProtocolError):
            default_alpha(1.0, 1.5)


class TestExpectedFlows:
    def test_explicit_value(self):
        """Hand-computed flow on a 2-path."""
        graph = path_graph(2)
        state = UniformState([10, 0], [1.0, 1.0])
        src, dst, flows = expected_flows(state, graph)
        # alpha = 4, d_ij = 1, 1/s_i + 1/s_j = 2, gain = 10.
        # f = 10 / (4 * 1 * 2) = 1.25 on (0 -> 1); 0 on (1 -> 0).
        flow_map = {(int(s), int(d)): f for s, d, f in zip(src, dst, flows)}
        assert flow_map[(0, 1)] == pytest.approx(1.25)
        assert flow_map[(1, 0)] == 0.0

    def test_threshold_respected(self):
        """No flow when the gap does not beat 1/s_j."""
        graph = path_graph(2)
        state = UniformState([3, 2], [1.0, 1.0])  # gap exactly 1
        _, _, flows = expected_flows(state, graph)
        np.testing.assert_array_equal(flows, 0.0)

    def test_zero_at_nash(self, ring8):
        """Definition 3.7: NE <=> all flows vanish."""
        state = UniformState(np.full(8, 5), np.ones(8))
        _, _, flows = expected_flows(state, ring8)
        np.testing.assert_array_equal(flows, 0.0)

    def test_custom_alpha_scales(self):
        graph = path_graph(2)
        state = UniformState([10, 0], [1.0, 1.0])
        _, _, flows_default = expected_flows(state, graph, alpha=4.0)
        _, _, flows_double = expected_flows(state, graph, alpha=8.0)
        np.testing.assert_allclose(flows_double, flows_default / 2.0)

    def test_speeds_enter_rate(self):
        graph = path_graph(2)
        state = UniformState([10, 0], [1.0, 2.0])
        _, _, flows = expected_flows(state, graph)
        # alpha = 8 (s_max = 2), rate = 8 * 1 * (1 + 0.5) = 12, gain = 10.
        flow_map_value = flows[flows > 0]
        assert flow_map_value[0] == pytest.approx(10.0 / 12.0)


class TestMigrationProbabilities:
    def test_q_is_flow_over_weight(self):
        graph = path_graph(2)
        state = UniformState([10, 0], [1.0, 1.0])
        src, dst, q = migration_probabilities(state, graph)
        _, _, flows = expected_flows(state, graph)
        np.testing.assert_allclose(q * state.node_weights[src], flows)

    def test_empty_node_zero_probability(self):
        graph = path_graph(2)
        state = UniformState([0, 10], [1.0, 1.0])
        src, dst, q = migration_probabilities(state, graph)
        # Flow is from node 1; node 0 (empty) has zero out-probability.
        for s, value in zip(src, q):
            if s == 0:
                assert value == 0.0

    def test_total_probability_below_one_default_alpha(self, rng):
        """The analysis guarantees sum_j q_ij <= 1 for alpha = 4 s_max."""
        graph = cycle_graph(8)
        for _ in range(20):
            counts = rng.integers(0, 100, size=8)
            speeds = rng.uniform(1.0, 3.0, size=8)
            state = UniformState(counts, speeds)
            src, _, q = migration_probabilities(state, graph)
            totals = np.zeros(8)
            np.add.at(totals, src, q)
            assert totals.max() <= 1.0 + 1e-12


class TestFlowMatrix:
    def test_matches_edge_flows(self):
        graph = path_graph(3)
        state = UniformState([9, 3, 0], [1.0, 1.0, 1.0])
        matrix = flow_matrix(state, graph)
        src, dst, flows = expected_flows(state, graph)
        for s, d, f in zip(src, dst, flows):
            assert matrix[s, d] == pytest.approx(f)

    def test_no_flow_on_non_edges(self):
        graph = path_graph(3)
        state = UniformState([9, 3, 0], [1.0, 1.0, 1.0])
        matrix = flow_matrix(state, graph)
        assert matrix[0, 2] == 0.0
        assert matrix[2, 0] == 0.0
