"""Property-based tests (hypothesis) over random event schedules.

The scenario subsystem's two contracts must hold for *any* schedule, not
just the curated churn-plus-shock ones:

* **conservation modulo events** — within a run (either engine), the
  per-replica exact totals change by precisely the net event deltas;
* **engine equivalence** — the weighted protocols stay pathwise
  bit-identical between the scalar and batched paths under arbitrary
  event sequences (the strongest check available: events and kernels
  must consume each replica's stream identically), and uniform runs stay
  deterministic under the same seed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocols import SelfishUniformProtocol, SelfishWeightedProtocol
from repro.core.stopping import NashStop
from repro.graphs.generators import cycle_graph
from repro.model.placement import place_weighted_random, random_placement
from repro.model.state import UniformState, WeightedState
from repro.scenarios import (
    LoadShock,
    NodeDrain,
    NodeOutage,
    PoissonChurnEvent,
    Schedule,
    ScenarioRunner,
    SpeedChange,
    TaskArrival,
    TaskDeparture,
    at,
    every,
)

from tests.equivalence import (
    assert_scenario_conservation,
    assert_scenario_engines_agree,
)

N = 5
HORIZON = 10

# Events drawn over a small 5-node ring; parameters kept small so a
# 10-round scenario stays fast while still mixing arrivals, departures,
# relocations and speed changes.
EVENTS = st.one_of(
    st.builds(
        TaskArrival,
        st.integers(0, 4),
        node=st.one_of(st.none(), st.integers(0, N - 1)),
        weight=st.sampled_from([0.25, 0.5, 1.0]),
    ),
    st.builds(TaskDeparture, st.integers(0, 4)),
    st.builds(
        PoissonChurnEvent,
        st.floats(0.0, 3.0, allow_nan=False),
        weight=st.sampled_from([0.5, 1.0]),
    ),
    st.builds(
        LoadShock,
        st.floats(0.0, 1.0, allow_nan=False),
        node=st.integers(0, N - 1),
    ),
    st.builds(
        SpeedChange, st.integers(0, N - 1), st.sampled_from([0.5, 2.0])
    ),
    st.builds(NodeDrain, st.integers(0, N - 1)),
    st.builds(
        NodeOutage, st.integers(0, N - 1), residual_factor=st.just(0.5)
    ),
)

ENTRIES = st.one_of(
    st.builds(at, st.integers(0, HORIZON - 1), EVENTS),
    st.builds(every, st.integers(1, 4), EVENTS, start=st.integers(0, 3)),
)

SCHEDULES = st.lists(ENTRIES, min_size=0, max_size=4).map(Schedule)


class TestRandomSchedules:
    @given(schedule=SCHEDULES, seed=st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_weighted_engines_pathwise_identical(self, schedule, seed):
        graph = cycle_graph(N)
        runner = ScenarioRunner(
            graph, SelfishWeightedProtocol(), schedule, target=NashStop()
        )

        def factory(rng):
            m = 12
            return WeightedState(
                place_weighted_random(m, N, rng),
                rng.uniform(0.1, 1.0, m),
                np.ones(N),
            )

        assert_scenario_engines_agree(
            runner,
            factory,
            repetitions=3,
            rounds=HORIZON,
            seed=seed,
            pathwise=True,
            conservation_atol=1e-9,
        )

    @given(schedule=SCHEDULES, seed=st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_uniform_batch_conserves_and_is_deterministic(self, schedule, seed):
        graph = cycle_graph(N)
        runner = ScenarioRunner(graph, SelfishUniformProtocol(), schedule)

        def factory(rng):
            return UniformState(random_placement(N, 40, rng), np.ones(N))

        def run_once():
            return runner.run_ensemble(
                factory, repetitions=4, rounds=HORIZON, seed=seed
            )

        first, second = run_once(), run_once()
        assert_scenario_conservation(first)
        np.testing.assert_array_equal(first.num_tasks, second.num_tasks)
        np.testing.assert_array_equal(first.psi0, second.psi0)
        # Counts never negative, whatever the events did.
        assert np.all(first.final_state.counts >= 0)
