"""Tests for repro.core.sequential (best-response baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import is_nash
from repro.core.potentials import phi_potential
from repro.core.sequential import SequentialBestResponse
from repro.core.simulator import run_protocol
from repro.core.stopping import NashStop
from repro.errors import ProtocolError
from repro.graphs.generators import cycle_graph, star_graph, torus_graph
from repro.model.state import UniformState, WeightedState


class TestSequentialBestResponse:
    def test_requires_uniform_state(self, ring8, rng):
        state = WeightedState([0], [0.5], np.ones(8))
        with pytest.raises(ProtocolError):
            SequentialBestResponse().execute_round(state, ring8, rng)

    def test_mass_conserved(self, ring8, rng):
        state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
        protocol = SequentialBestResponse()
        for _ in range(10):
            protocol.execute_round(state, ring8, rng)
            assert state.num_tasks == 80
            assert np.all(state.counts >= 0)

    def test_converges_to_nash(self, rng):
        graph = torus_graph(3)
        state = UniformState(np.array([90] + [0] * 8), np.ones(9))
        result = run_protocol(
            graph,
            SequentialBestResponse(),
            state,
            stopping=NashStop(),
            max_rounds=5_000,
            seed=3,
        )
        assert result.converged
        assert is_nash(state, graph)

    def test_nash_absorbing(self, ring8, rng):
        state = UniformState(np.full(8, 10), np.ones(8))
        protocol = SequentialBestResponse()
        for _ in range(10):
            assert protocol.execute_round(state, ring8, rng).tasks_moved == 0

    def test_phi1_strictly_decreases_with_moves(self, rng):
        """Each sequential best-response move strictly drops Phi_1."""
        graph = cycle_graph(6)
        state = UniformState(np.array([60, 0, 0, 0, 0, 0]), np.ones(6))
        protocol = SequentialBestResponse()
        previous = phi_potential(state, 1)
        for _ in range(40):
            summary = protocol.execute_round(state, graph, rng)
            current = phi_potential(state, 1)
            if summary.tasks_moved > 0:
                assert current < previous
            else:
                assert current == pytest.approx(previous)
            previous = current

    def test_respects_speeds(self, rng):
        """Fast neighbour attracts the task even at equal counts."""
        graph = star_graph(3)  # hub 0, leaves 1, 2
        speeds = np.array([1.0, 1.0, 1.0])
        state = UniformState(np.array([0, 6, 0]), speeds)
        protocol = SequentialBestResponse()
        for _ in range(20):
            protocol.execute_round(state, graph, rng)
        assert is_nash(state, graph)

    def test_faster_than_concurrent_in_rounds(self, rng):
        """Best response with full neighbourhood info needs fewer rounds."""
        from repro.core.protocols import SelfishUniformProtocol

        graph = cycle_graph(8)

        def rounds(protocol, seed):
            state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
            result = run_protocol(
                graph, protocol, state, stopping=NashStop(),
                max_rounds=50_000, seed=seed,
            )
            assert result.converged
            return result.stop_round

        sequential = np.median([rounds(SequentialBestResponse(), s) for s in range(3)])
        concurrent = np.median(
            [rounds(SelfishUniformProtocol(), s) for s in range(3)]
        )
        assert sequential <= concurrent
