"""Tests for repro.core.game: the potential-game structure.

The central identities are verified *exactly* against recomputed
potentials: the closed-form ``Phi_1`` move deltas must match the actual
before/after difference to machine precision on arbitrary states.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.game import (
    best_response_target,
    is_improvement_move,
    unit_move_phi1_delta,
    weighted_move_phi1_delta,
)
from repro.core.potentials import phi_potential
from repro.errors import ModelError, ValidationError
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.model.state import UniformState, WeightedState
from repro.utils.rng import make_rng


class TestUnitMoveDelta:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matches_recomputed_phi1(self, seed):
        rng = make_rng(seed)
        n = int(rng.integers(2, 8))
        counts = rng.integers(0, 30, size=n)
        counts[0] = max(1, counts[0])  # ensure a task to move
        speeds = rng.uniform(1.0, 4.0, size=n)
        state = UniformState(counts, speeds)
        target = int(rng.integers(1, n))
        predicted = unit_move_phi1_delta(state, 0, target)
        before = phi_potential(state, 1)
        state.apply_moves([0], [target], [1])
        after = phi_potential(state, 1)
        assert after - before == pytest.approx(predicted, rel=1e-9, abs=1e-9)

    def test_sign_iff_improvement(self):
        """delta Phi_1 < 0 exactly when the task's load improves."""
        # loads 5 vs 0: improving move -> negative delta.
        improving = UniformState([5, 0], [1.0, 1.0])
        assert unit_move_phi1_delta(improving, 0, 1) < 0
        # loads 2 vs 2: moving worsens (perceived 3 > 2) -> positive.
        worsening = UniformState([2, 2], [1.0, 1.0])
        assert unit_move_phi1_delta(worsening, 0, 1) > 0
        # Boundary: perceived load equal to current -> delta 0.
        boundary = UniformState([3, 2], [1.0, 1.0])
        assert unit_move_phi1_delta(boundary, 0, 1) == pytest.approx(0.0)

    def test_self_move_zero(self):
        state = UniformState([3, 2], [1.0, 1.0])
        assert unit_move_phi1_delta(state, 0, 0) == 0.0

    def test_empty_source_rejected(self):
        state = UniformState([0, 2], [1.0, 1.0])
        with pytest.raises(ModelError):
            unit_move_phi1_delta(state, 0, 1)

    def test_out_of_range(self):
        state = UniformState([1, 1], [1.0, 1.0])
        with pytest.raises(ValidationError):
            unit_move_phi1_delta(state, 0, 5)


class TestWeightedMoveDelta:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matches_recomputed_phi1(self, seed):
        rng = make_rng(seed)
        n = int(rng.integers(2, 6))
        m = int(rng.integers(1, 25))
        weights = rng.uniform(0.05, 1.0, size=m)
        locations = rng.integers(0, n, size=m)
        speeds = rng.uniform(1.0, 3.0, size=n)
        state = WeightedState(locations, weights, speeds)
        task = int(rng.integers(0, m))
        target = int(rng.integers(0, n))
        predicted = weighted_move_phi1_delta(state, task, target)
        before = phi_potential(state, 1)
        if target != state.task_nodes[task]:
            state.apply_moves([task], [target])
        after = phi_potential(state, 1)
        assert after - before == pytest.approx(predicted, rel=1e-7, abs=1e-7)

    def test_unit_weight_consistent_with_uniform(self):
        """w = 1 weighted delta equals the uniform-task delta."""
        uniform = UniformState([4, 1], [1.0, 2.0])
        weighted = WeightedState(
            [0, 0, 0, 0, 1], np.ones(5), [1.0, 2.0]
        )
        assert weighted_move_phi1_delta(weighted, 0, 1) == pytest.approx(
            unit_move_phi1_delta(uniform, 0, 1)
        )

    def test_bad_task_index(self):
        state = WeightedState([0], [0.5], [1.0, 1.0])
        with pytest.raises(ValidationError):
            weighted_move_phi1_delta(state, 3, 1)


class TestImprovementPredicate:
    def test_requires_adjacency(self):
        graph = path_graph(3)
        state = UniformState([9, 0, 0], [1.0, 1.0, 1.0])
        assert is_improvement_move(state, graph, 0, 1)
        assert not is_improvement_move(state, graph, 0, 2)  # not an edge

    def test_requires_task(self):
        graph = path_graph(2)
        state = UniformState([0, 5], [1.0, 1.0])
        assert not is_improvement_move(state, graph, 0, 1)

    def test_consistent_with_delta_sign(self, rng):
        graph = cycle_graph(6)
        for _ in range(30):
            counts = rng.integers(0, 15, size=6)
            speeds = rng.uniform(1.0, 3.0, size=6)
            state = UniformState(counts, speeds)
            for source in range(6):
                if state.counts[source] < 1:
                    continue
                for target in graph.neighbors(source):
                    improving = is_improvement_move(state, graph, source, int(target))
                    delta = unit_move_phi1_delta(state, source, int(target))
                    assert improving == (delta < -1e-12)


class TestBestResponse:
    def test_picks_global_min_neighbour(self):
        graph = star_graph(4)  # hub 0
        state = UniformState([9, 5, 1, 3], [1.0, 1.0, 1.0, 1.0])
        assert best_response_target(state, graph, 0) == 2

    def test_none_at_local_equilibrium(self):
        graph = path_graph(2)
        state = UniformState([3, 2], [1.0, 1.0])
        assert best_response_target(state, graph, 0) is None

    def test_none_without_tasks(self):
        graph = path_graph(2)
        state = UniformState([0, 3], [1.0, 1.0])
        assert best_response_target(state, graph, 0) is None

    def test_speeds_considered(self):
        graph = star_graph(3)
        # neighbour 1: (4+1)/1 = 5; neighbour 2: (6+1)/2 = 3.5 -> pick 2.
        state = UniformState([9, 4, 6], [1.0, 1.0, 2.0])
        assert best_response_target(state, graph, 0) == 2
