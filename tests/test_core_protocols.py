"""Tests for repro.core.protocols (Algorithms 1 and 2 + the [6] baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import is_nash
from repro.core.flows import expected_flows
from repro.core.protocols import (
    PerTaskThresholdProtocol,
    Protocol,
    RoundSummary,
    SelfishUniformProtocol,
    SelfishWeightedProtocol,
)
from repro.errors import ProtocolError
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.model.state import UniformState, WeightedState


class TestProtocolBase:
    def test_alpha_resolution_default(self):
        protocol = SelfishUniformProtocol()
        state = UniformState([1, 1], [1.0, 3.0])
        assert protocol.resolve_alpha(state) == 12.0

    def test_alpha_resolution_explicit(self):
        protocol = SelfishUniformProtocol(alpha=20.0)
        state = UniformState([1, 1], [1.0, 3.0])
        assert protocol.resolve_alpha(state) == 20.0

    def test_invalid_alpha(self):
        with pytest.raises(Exception):
            SelfishUniformProtocol(alpha=-1.0)

    def test_graph_size_mismatch(self, ring8):
        protocol = SelfishUniformProtocol()
        state = UniformState([1, 1], [1.0, 1.0])
        with pytest.raises(ProtocolError, match="vertices"):
            protocol.execute_round(state, ring8, np.random.default_rng(0))

    def test_base_round_not_implemented(self, ring8):
        state = UniformState(np.ones(8, dtype=int), np.ones(8))
        with pytest.raises(NotImplementedError):
            Protocol().execute_round(state, ring8, np.random.default_rng(0))


class TestSelfishUniformProtocol:
    def test_requires_uniform_state(self, ring8, rng):
        protocol = SelfishUniformProtocol()
        state = WeightedState(np.zeros(5, dtype=int), np.full(5, 0.5), np.ones(8))
        with pytest.raises(ProtocolError):
            protocol.execute_round(state, ring8, rng)

    def test_mass_conservation(self, ring8, rng):
        protocol = SelfishUniformProtocol()
        state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
        for _ in range(50):
            protocol.execute_round(state, ring8, rng)
            assert state.num_tasks == 80
            assert np.all(state.counts >= 0)

    def test_nash_state_absorbing(self, ring8, rng):
        """No moves ever happen from an exact NE."""
        protocol = SelfishUniformProtocol()
        state = UniformState(np.full(8, 10), np.ones(8))
        for _ in range(30):
            summary = protocol.execute_round(state, ring8, rng)
            assert summary.tasks_moved == 0
        np.testing.assert_array_equal(state.counts, np.full(8, 10))

    def test_moves_only_along_edges(self, rng):
        """On a star, tasks on leaves can only move to the hub."""
        graph = star_graph(5)
        counts = np.array([0, 40, 0, 0, 0])
        state = UniformState(counts, np.ones(5))
        protocol = SelfishUniformProtocol()
        protocol.execute_round(state, graph, rng)
        # Tasks from node 1 may only have gone to hub 0.
        assert state.counts[2] == 0
        assert state.counts[3] == 0
        assert state.counts[4] == 0
        assert state.counts[0] + state.counts[1] == 40

    def test_expected_moves_match_flows(self, rng):
        """Mean migrants per edge ~ f_ij over many sampled rounds."""
        graph = path_graph(2)
        state = UniformState([40, 0], [1.0, 1.0])
        protocol = SelfishUniformProtocol()
        _, _, flows = expected_flows(state, graph)
        expected = flows[flows > 0][0]  # 40 / 8 = 5
        samples = []
        for _ in range(4000):
            trial = state.copy()
            protocol.execute_round(trial, graph, rng)
            samples.append(40 - trial.counts[0])
        mean = float(np.mean(samples))
        standard_error = float(np.std(samples)) / np.sqrt(len(samples))
        assert abs(mean - expected) < 4 * standard_error + 1e-9

    def test_no_moves_below_threshold(self, rng):
        graph = path_graph(2)
        state = UniformState([5, 4], [1.0, 1.0])  # gap 1 = 1/s_j
        protocol = SelfishUniformProtocol()
        summary = protocol.execute_round(state, graph, rng)
        assert summary.tasks_moved == 0

    def test_empty_state(self, ring8, rng):
        state = UniformState(np.zeros(8, dtype=int), np.ones(8))
        summary = SelfishUniformProtocol().execute_round(state, ring8, rng)
        assert summary == RoundSummary(0, 0.0, False)

    def test_saturation_flag_with_tiny_alpha(self, rng):
        graph = complete_graph(4)
        state = UniformState([1000, 0, 0, 0], np.ones(4))
        protocol = SelfishUniformProtocol(alpha=0.01)
        summary = protocol.execute_round(state, graph, rng)
        assert summary.saturated

    def test_deterministic_given_seed(self, ring8):
        counts = np.array([40, 0, 10, 0, 5, 0, 25, 0])
        a = UniformState(counts.copy(), np.ones(8))
        b = UniformState(counts.copy(), np.ones(8))
        SelfishUniformProtocol().execute_round(a, ring8, np.random.default_rng(9))
        SelfishUniformProtocol().execute_round(b, ring8, np.random.default_rng(9))
        np.testing.assert_array_equal(a.counts, b.counts)


class TestSelfishWeightedProtocol:
    def make_state(self, rng, n=8, m=200):
        weights = rng.uniform(0.1, 1.0, size=m)
        locations = np.zeros(m, dtype=np.int64)
        return WeightedState(locations, weights, np.ones(n))

    def test_requires_weighted_state(self, ring8, rng):
        state = UniformState(np.ones(8, dtype=int), np.ones(8))
        with pytest.raises(ProtocolError):
            SelfishWeightedProtocol().execute_round(state, ring8, rng)

    def test_invalid_rule(self):
        with pytest.raises(ProtocolError):
            SelfishWeightedProtocol(rule="bogus")

    def test_rule_property(self):
        assert SelfishWeightedProtocol(rule="flow").rule == "flow"
        assert SelfishWeightedProtocol(rule="pseudocode").rule == "pseudocode"

    def test_weight_conservation(self, ring8, rng):
        state = self.make_state(rng)
        before = state.total_weight
        protocol = SelfishWeightedProtocol()
        for _ in range(30):
            protocol.execute_round(state, ring8, rng)
        assert state.total_weight == pytest.approx(before)

    def test_threshold_state_absorbing(self, ring8, rng):
        """Once l_i - l_j <= 1/s_j everywhere, Algorithm 2 never moves."""
        m = 80
        weights = np.full(m, 0.5)
        locations = np.repeat(np.arange(8), 10)
        state = WeightedState(locations, weights, np.ones(8))
        assert is_nash(state, ring8)
        protocol = SelfishWeightedProtocol()
        for _ in range(30):
            assert protocol.execute_round(state, ring8, rng).tasks_moved == 0

    def test_expected_weight_flow_matches(self, rng):
        """Flow rule: mean migrated weight ~ f_ij of Definition 4.1."""
        graph = path_graph(2)
        m = 60
        weights = np.full(m, 0.5)
        state = WeightedState(np.zeros(m, dtype=np.int64), weights, [1.0, 1.0])
        _, _, flows = expected_flows(state, graph)
        expected = flows[flows > 0][0]
        protocol = SelfishWeightedProtocol(rule="flow")
        samples = []
        for _ in range(3000):
            trial = state.copy()
            summary = protocol.execute_round(trial, graph, rng)
            samples.append(summary.weight_moved)
        mean = float(np.mean(samples))
        standard_error = float(np.std(samples)) / np.sqrt(len(samples))
        assert abs(mean - expected) < 4 * standard_error + 1e-9

    def test_pseudocode_matches_flow_for_uniform_speeds(self, rng):
        """The two rules coincide when all speeds are equal."""
        graph = path_graph(2)
        m = 60
        weights = np.full(m, 0.5)
        means = {}
        for rule in ("flow", "pseudocode"):
            protocol = SelfishWeightedProtocol(rule=rule)
            local_rng = np.random.default_rng(123)
            moved = []
            for _ in range(2000):
                state = WeightedState(
                    np.zeros(m, dtype=np.int64), weights, [1.0, 1.0]
                )
                summary = protocol.execute_round(state, graph, local_rng)
                moved.append(summary.weight_moved)
            means[rule] = float(np.mean(moved))
        assert means["flow"] == pytest.approx(means["pseudocode"], rel=0.15)

    def test_empty_task_system(self, ring8, rng):
        state = WeightedState(
            np.zeros(0, dtype=np.int64), np.zeros(0), np.ones(8)
        )
        summary = SelfishWeightedProtocol().execute_round(state, ring8, rng)
        assert summary.tasks_moved == 0


class TestPerTaskThresholdProtocol:
    def test_light_tasks_keep_moving(self, rng):
        """A threshold-NE state can still have per-task incentives."""
        graph = path_graph(2)
        # Loads 0.9 vs 0: threshold-NE, but light tasks (0.3 < 0.9) move.
        weights = np.full(3, 0.3)
        state = WeightedState(np.zeros(3, dtype=np.int64), weights, [1.0, 1.0])
        assert is_nash(state, graph)
        protocol = PerTaskThresholdProtocol()
        moved = 0
        for _ in range(300):
            moved += protocol.execute_round(state, graph, rng).tasks_moved
        assert moved > 0

    def test_requires_weighted_state(self, ring8, rng):
        state = UniformState(np.ones(8, dtype=int), np.ones(8))
        with pytest.raises(ProtocolError):
            PerTaskThresholdProtocol().execute_round(state, ring8, rng)

    def test_weight_conserved(self, ring8, rng):
        weights = rng.uniform(0.1, 1.0, size=100)
        state = WeightedState(np.zeros(100, dtype=np.int64), weights, np.ones(8))
        before = state.total_weight
        protocol = PerTaskThresholdProtocol()
        for _ in range(30):
            protocol.execute_round(state, ring8, rng)
        assert state.total_weight == pytest.approx(before)

    def test_per_task_exact_nash_absorbing(self, rng):
        graph = path_graph(2)
        # Loads 1.0 vs 0.9; gaps 0.1 <= every weight -> per-task NE.
        state = WeightedState(
            np.array([0, 1]), np.array([1.0, 0.9]), [1.0, 1.0]
        )
        protocol = PerTaskThresholdProtocol()
        for _ in range(50):
            assert protocol.execute_round(state, graph, rng).tasks_moved == 0


class TestGraphCacheKeying:
    """Regression: the per-protocol graph cache was keyed by ``id(graph)``,

    so a garbage-collected graph whose id got reused by a new graph was
    served the stale cache (wrong dij/CSR arrays). The cache is now
    weakly keyed by the graph object itself."""

    def test_entry_released_when_graph_dies(self):
        import gc

        protocol = SelfishUniformProtocol()
        graph = cycle_graph(8)
        protocol._graph_cache(graph)
        assert len(protocol._cache) == 1
        del graph
        protocol._last = None  # drop the identity fast path's weak ref too
        gc.collect()
        assert len(protocol._cache) == 0

    def test_fresh_graphs_always_get_matching_arrays(self):
        import gc

        protocol = SelfishUniformProtocol()
        # Churn through differently shaped graphs, destroying each before
        # the next is built, so ids are eligible for reuse; every lookup
        # must return arrays consistent with the live graph's structure.
        for n in [4, 9, 5, 12, 6, 16, 7, 8] * 3:
            graph = cycle_graph(n) if n % 2 == 0 else star_graph(n)
            cache = protocol._graph_cache(graph)
            assert cache.csr_rows.shape[0] == graph.indices.shape[0]
            expected_dij = np.maximum(
                graph.degrees[cache.csr_rows], graph.degrees[graph.indices]
            ).astype(np.float64)
            np.testing.assert_array_equal(cache.dij_csr, expected_dij)
            del graph, cache
            gc.collect()

    def test_identity_fast_path_tracks_graph_switches(self):
        protocol = SelfishUniformProtocol()
        first = cycle_graph(6)
        second = star_graph(6)
        cache_first = protocol._graph_cache(first)
        cache_second = protocol._graph_cache(second)
        assert protocol._graph_cache(first) is cache_first
        assert protocol._graph_cache(second) is cache_second


class TestGraphCacheLRU:
    """Regression: a full graph cache used to be *cleared wholesale*,

    so a rotation of ``capacity + 1`` graphs rebuilt every hot entry on
    each pass. Eviction is now true LRU: the single least-recently-used
    entry is dropped and the hot remainder survives."""

    def _fill(self, protocol, count):
        graphs = [cycle_graph(3 + index) for index in range(count)]
        for graph in graphs:
            protocol._graph_cache(graph)
        return graphs

    def test_insert_at_capacity_evicts_exactly_one(self):
        from repro.core.protocols import GRAPH_CACHE_CAPACITY

        protocol = SelfishUniformProtocol()
        graphs = self._fill(protocol, GRAPH_CACHE_CAPACITY)
        caches = {g: protocol._graph_cache(g) for g in graphs}
        overflow = cycle_graph(3 + GRAPH_CACHE_CAPACITY)
        protocol._graph_cache(overflow)
        assert len(protocol._cache) == GRAPH_CACHE_CAPACITY
        # graphs[0] is the LRU entry; every other hot entry survived
        # (identity check: the same cache object, not a rebuild).
        assert graphs[0] not in protocol._cache
        for graph in graphs[1:]:
            assert protocol._graph_cache(graph) is caches[graph]

    def test_touch_protects_oldest_entry(self):
        from repro.core.protocols import GRAPH_CACHE_CAPACITY

        protocol = SelfishUniformProtocol()
        graphs = self._fill(protocol, GRAPH_CACHE_CAPACITY)
        protocol._graph_cache(graphs[0])  # refresh the oldest
        protocol._graph_cache(cycle_graph(3 + GRAPH_CACHE_CAPACITY))
        assert graphs[0] in protocol._cache
        assert graphs[1] not in protocol._cache  # second-oldest evicted

    def test_dead_refs_do_not_count_toward_capacity(self):
        import gc

        from repro.core.protocols import GRAPH_CACHE_CAPACITY

        protocol = SelfishUniformProtocol()
        transient = cycle_graph(64)
        protocol._graph_cache(transient)
        del transient
        protocol._last = None
        gc.collect()
        graphs = self._fill(protocol, GRAPH_CACHE_CAPACITY)
        # the dead entry vanished on its own; all live entries fit
        assert all(graph in protocol._cache for graph in graphs)
