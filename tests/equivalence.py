"""Shared statistical-equivalence helpers for the batch-engine suites.

One audited code path for the three contracts every batched kernel must
honour against its scalar reference (in the spirit of the
neighbourhood-load checks of the original selfish load balancing
analysis):

* **KS agreement** — first-hitting-round samples produced by the batch
  and scalar engines are draws from one distribution (two-sample
  Kolmogorov–Smirnov test);
* **conservation** — per-replica invariants (task totals for uniform
  stacks, total task weight for weighted stacks) hold *exactly* after
  every batched round, and retired replicas stay bit-frozen;
* **spawned-stream determinism** — the same seed reproduces results
  bit-for-bit, and each replica's trajectory is stable under resizing
  the ensemble (prefix stability of spawned child streams).

Consumed by ``tests/test_core_batch.py`` (uniform engine),
``tests/test_core_batch_weighted.py`` (weighted engine) and
``tests/test_batch_edge_cases.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy import stats

from repro.analysis.convergence import measure_convergence_rounds
from repro.model.batch import BatchStateBase, BatchUniformState, BatchWeightedState

__all__ = [
    "exact_totals",
    "replica_snapshot",
    "assert_ks_agreement",
    "run_both_engines",
    "assert_engines_agree",
    "assert_batch_conserves",
    "assert_same_seed_determinism",
    "assert_prefix_stability",
]


def exact_totals(batch: BatchStateBase) -> np.ndarray:
    """Per-replica totals that must be *exactly* conserved every round.

    Uniform stacks conserve the integer task totals; weighted stacks
    conserve the total task weight bit-for-bit (weights are immutable,
    only locations change).
    """
    if isinstance(batch, BatchWeightedState):
        return batch.total_task_weight
    if isinstance(batch, BatchUniformState):
        return batch.num_tasks.copy()
    raise TypeError(f"unknown replica stack type {type(batch).__name__}")


def replica_snapshot(batch: BatchStateBase, index: int) -> np.ndarray:
    """A bit-comparable snapshot of one replica's mutable assignment."""
    if isinstance(batch, BatchWeightedState):
        return batch.task_nodes[index].copy()
    return batch.counts[index].copy()


def assert_ks_agreement(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    min_pvalue: float = 0.01,
    label: str = "engines",
) -> float:
    """Two-sample KS test; fails when the samples' laws diverge."""
    result = stats.ks_2samp(sample_a, sample_b)
    assert result.pvalue > min_pvalue, (
        f"{label} diverged: KS p={result.pvalue:.4g} "
        f"(medians {np.median(sample_a):.4g} vs {np.median(sample_b):.4g})"
    )
    return float(result.pvalue)


def run_both_engines(**common):
    """One measurement through each engine with identical inputs."""
    batch = measure_convergence_rounds(engine="batch", **common)
    scalar = measure_convergence_rounds(engine="scalar", **common)
    assert batch.engine == "batch"
    assert scalar.engine == "scalar"
    return batch, scalar


def assert_engines_agree(
    min_pvalue: float = 0.01, require_all_converged: bool = True, **common
):
    """First-hit distributions of the two engines pass the KS test.

    ``common`` is forwarded verbatim to
    :func:`repro.analysis.convergence.measure_convergence_rounds`
    (graph, protocol, state_factory, stopping, repetitions, max_rounds,
    seed, ...). Returns the two measurements for additional assertions.
    """
    batch, scalar = run_both_engines(**common)
    if require_all_converged:
        assert batch.all_converged, "batch engine failed to converge"
        assert scalar.all_converged, "scalar engine failed to converge"
    assert_ks_agreement(
        batch.rounds,
        scalar.rounds,
        min_pvalue=min_pvalue,
        label="batch vs scalar first-hit distributions",
    )
    return batch, scalar


def assert_batch_conserves(
    batch: BatchStateBase,
    protocol,
    graph,
    rngs: Sequence[np.random.Generator],
    rounds: int = 50,
    retired: Sequence[int] = (),
) -> None:
    """Advance ``rounds`` batched rounds asserting per-round invariants.

    After every round: the per-replica exact totals are unchanged, node
    weights stay non-negative and (for weighted stacks) consistent with
    a from-scratch bincount, and every replica listed in ``retired`` is
    excluded from the active mask, reports zero movement, and keeps a
    bit-identical assignment.
    """
    active = np.ones(batch.num_replicas, dtype=bool)
    frozen = {}
    for index in retired:
        active[index] = False
        frozen[index] = replica_snapshot(batch, index)
    totals = exact_totals(batch)
    for _ in range(rounds):
        summary = protocol.execute_round_batch(batch, graph, rngs, active)
        np.testing.assert_array_equal(
            exact_totals(batch),
            totals,
            err_msg="per-replica totals not exactly conserved",
        )
        assert np.all(batch.node_weights >= 0)
        if isinstance(batch, BatchWeightedState):
            rebuilt = batch.copy()
            rebuilt.rebuild_node_weights()
            np.testing.assert_allclose(
                batch.node_weights,
                rebuilt.node_weights,
                atol=1e-9,
                err_msg="incremental node weights drifted from bincount",
            )
        for index, snapshot in frozen.items():
            assert summary.tasks_moved[index] == 0
            assert summary.weight_moved[index] == 0.0
            np.testing.assert_array_equal(
                replica_snapshot(batch, index),
                snapshot,
                err_msg=f"retired replica {index} was mutated",
            )


def assert_same_seed_determinism(run: Callable[[], tuple]) -> tuple:
    """``run()`` twice must give bit-identical array tuples."""
    first = run()
    second = run()
    for array_a, array_b in zip(first, second):
        np.testing.assert_array_equal(array_a, array_b)
    return first


def assert_prefix_stability(
    run: Callable[[int], tuple], small: int, large: int
) -> None:
    """Replica ``r``'s results must not depend on the ensemble size.

    ``run(k)`` runs a ``k``-replica ensemble and returns arrays whose
    leading axis is the replica axis; the ``small``-replica results must
    be a bit-identical prefix of the ``large``-replica results (spawned
    child streams are index-addressed, not count-dependent).
    """
    assert small <= large
    results_small = run(small)
    results_large = run(large)
    for array_small, array_large in zip(results_small, results_large):
        np.testing.assert_array_equal(array_small, array_large[:small])
