"""Shared statistical-equivalence helpers for the batch-engine suites.

One audited code path for the three contracts every batched kernel must
honour against its scalar reference (in the spirit of the
neighbourhood-load checks of the original selfish load balancing
analysis):

* **KS agreement** — first-hitting-round samples produced by the batch
  and scalar engines are draws from one distribution (two-sample
  Kolmogorov–Smirnov test);
* **conservation** — per-replica invariants (task totals for uniform
  stacks, total task weight for weighted stacks) hold *exactly* after
  every batched round, and retired replicas stay bit-frozen;
* **spawned-stream determinism** — the same seed reproduces results
  bit-for-bit, and each replica's trajectory is stable under resizing
  the ensemble (prefix stability of spawned child streams).

Scenario-aware variants extend the contracts to dynamic workloads
(:mod:`repro.scenarios`): conservation *modulo* the scheduled event
deltas (:func:`assert_scenario_conservation`) and batch-vs-scalar
agreement under a fixed schedule
(:func:`assert_scenario_engines_agree`) — pathwise for the weighted
protocols, in law (KS over final potentials and recovery rounds) for
the uniform protocol. Dynamic-topology scenarios add two exact
contracts: the per-round spectral trace is identical across engines,
policies and shard windows (:func:`assert_topology_traces_agree`), and
a scheduled partition/recovery pair shows up in the trace at exactly
the expected rows (:func:`assert_topology_window`).

The counter stream layout (``rng_policy="counter"``, PR 5) pins the
same three contracts at the law level:
:func:`assert_counter_matches_scalar_law` (KS against the scalar
reference), :func:`assert_counter_scenario_agrees` (scenario ensembles:
conservation modulo events plus KS), and the generic
:func:`assert_same_seed_determinism` / :func:`assert_prefix_stability`
run with counter-policy closures.

Consumed by ``tests/test_core_batch.py`` (uniform engine),
``tests/test_core_batch_weighted.py`` (weighted engine),
``tests/test_batch_edge_cases.py``, ``tests/test_rng_streams.py``
(counter layout) and the ``tests/test_scenarios_*`` suites.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy import stats

from repro.analysis.convergence import measure_convergence_rounds
from repro.model.batch import BatchStateBase, BatchUniformState, BatchWeightedState
from repro.utils.rng import StreamLayout

__all__ = [
    "exact_totals",
    "replica_snapshot",
    "assert_ks_agreement",
    "run_both_engines",
    "assert_engines_agree",
    "assert_batch_conserves",
    "assert_same_seed_determinism",
    "assert_prefix_stability",
    "assert_scenario_conservation",
    "run_scenario_both_engines",
    "assert_scenario_engines_agree",
    "assert_counter_matches_scalar_law",
    "assert_counter_scenario_agrees",
    "assert_topology_traces_agree",
    "assert_topology_window",
]


def exact_totals(batch: BatchStateBase) -> np.ndarray:
    """Per-replica totals that must be *exactly* conserved every round.

    Uniform stacks conserve the integer task totals; weighted stacks
    conserve the total task weight bit-for-bit (weights are immutable,
    only locations change).
    """
    if isinstance(batch, BatchWeightedState):
        return batch.total_task_weight
    if isinstance(batch, BatchUniformState):
        return batch.num_tasks.copy()
    raise TypeError(f"unknown replica stack type {type(batch).__name__}")


def replica_snapshot(batch: BatchStateBase, index: int) -> np.ndarray:
    """A bit-comparable snapshot of one replica's mutable assignment."""
    if isinstance(batch, BatchWeightedState):
        return batch.task_nodes[index].copy()
    return batch.counts[index].copy()


def assert_ks_agreement(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    min_pvalue: float = 0.01,
    label: str = "engines",
) -> float:
    """Two-sample KS test; fails when the samples' laws diverge."""
    result = stats.ks_2samp(sample_a, sample_b)
    assert result.pvalue > min_pvalue, (
        f"{label} diverged: KS p={result.pvalue:.4g} "
        f"(medians {np.median(sample_a):.4g} vs {np.median(sample_b):.4g})"
    )
    return float(result.pvalue)


def run_both_engines(**common):
    """One measurement through each engine with identical inputs."""
    batch = measure_convergence_rounds(engine="batch", **common)
    scalar = measure_convergence_rounds(engine="scalar", **common)
    assert batch.engine == "batch"
    assert scalar.engine == "scalar"
    return batch, scalar


def assert_engines_agree(
    min_pvalue: float = 0.01, require_all_converged: bool = True, **common
):
    """First-hit distributions of the two engines pass the KS test.

    ``common`` is forwarded verbatim to
    :func:`repro.analysis.convergence.measure_convergence_rounds`
    (graph, protocol, state_factory, stopping, repetitions, max_rounds,
    seed, ...). Returns the two measurements for additional assertions.
    """
    batch, scalar = run_both_engines(**common)
    if require_all_converged:
        assert batch.all_converged, "batch engine failed to converge"
        assert scalar.all_converged, "scalar engine failed to converge"
    assert_ks_agreement(
        batch.rounds,
        scalar.rounds,
        min_pvalue=min_pvalue,
        label="batch vs scalar first-hit distributions",
    )
    return batch, scalar


def assert_batch_conserves(
    batch: BatchStateBase,
    protocol,
    graph,
    rngs: Sequence[np.random.Generator] | StreamLayout,
    rounds: int = 50,
    retired: Sequence[int] = (),
) -> None:
    """Advance ``rounds`` batched rounds asserting per-round invariants.

    ``rngs`` may be the classic per-replica generator list or any
    :class:`~repro.utils.rng.StreamLayout` (counter layouts get their
    ``begin_round`` driven here, as the simulators would). After every
    round: the per-replica exact totals are unchanged, node weights stay
    non-negative and (for weighted stacks) consistent with a
    from-scratch bincount, and every replica listed in ``retired`` is
    excluded from the active mask, reports zero movement, and keeps a
    bit-identical assignment.
    """
    active = np.ones(batch.num_replicas, dtype=bool)
    frozen = {}
    for index in retired:
        active[index] = False
        frozen[index] = replica_snapshot(batch, index)
    totals = exact_totals(batch)
    for round_index in range(rounds):
        if isinstance(rngs, StreamLayout):
            rngs.begin_round(round_index)
        summary = protocol.execute_round_batch(batch, graph, rngs, active)
        np.testing.assert_array_equal(
            exact_totals(batch),
            totals,
            err_msg="per-replica totals not exactly conserved",
        )
        assert np.all(batch.node_weights >= 0)
        if isinstance(batch, BatchWeightedState):
            rebuilt = batch.copy()
            rebuilt.rebuild_node_weights()
            np.testing.assert_allclose(
                batch.node_weights,
                rebuilt.node_weights,
                atol=1e-9,
                err_msg="incremental node weights drifted from bincount",
            )
        for index, snapshot in frozen.items():
            assert summary.tasks_moved[index] == 0
            assert summary.weight_moved[index] == 0.0
            np.testing.assert_array_equal(
                replica_snapshot(batch, index),
                snapshot,
                err_msg=f"retired replica {index} was mutated",
            )


def assert_scenario_conservation(result, atol: float = 0.0) -> None:
    """Totals change *exactly* by the scheduled event deltas, round by round.

    The dynamic-workload analogue of per-round conservation: within one
    scenario run (either engine), the per-replica exactly conserved
    total (task count / total task weight) after round ``t`` must equal
    the total before it plus the net delta of the events applied at
    round ``t`` — relocations (shocks, drains) and protocol rounds must
    never change it. Uniform runs check with ``atol=0`` (integer
    totals); weighted runs need a tiny float tolerance because the
    event log accumulates weight sums in a different order than the
    state's total.
    """
    horizon = result.rounds_executed
    deltas = np.zeros((horizon, result.num_replicas))
    for record in result.events:
        deltas[record.round_index] += record.weight_added - record.weight_removed
    expected = result.total_weight[0] + np.cumsum(deltas, axis=0)
    np.testing.assert_allclose(
        result.total_weight[1:],
        expected,
        atol=atol,
        rtol=0.0,
        err_msg="totals diverged from the event log (conservation modulo events)",
    )


def run_scenario_both_engines(
    runner, state_factory, repetitions: int, rounds: int, seed: int
):
    """One scenario ensemble through each engine with identical streams."""
    batch = runner.run_ensemble(
        state_factory, repetitions, rounds, seed=seed, engine="batch"
    )
    scalar = runner.run_ensemble(
        state_factory, repetitions, rounds, seed=seed, engine="scalar"
    )
    assert batch.engine == "batch"
    assert scalar.engine == "scalar"
    return batch, scalar


def assert_scenario_engines_agree(
    runner,
    state_factory,
    repetitions: int,
    rounds: int,
    seed: int,
    pathwise: bool,
    shock_round: int | None = None,
    min_pvalue: float = 0.01,
    conservation_atol: float = 0.0,
):
    """Batch and scalar scenario runs agree (pathwise or in law).

    ``pathwise=True`` (weighted protocols) asserts bit-identical task
    counts, target verdicts and event magnitudes plus numerically
    identical potentials. ``pathwise=False`` (uniform protocol — the
    kernels are only law-equivalent) asserts KS agreement of the final
    potentials and, when ``shock_round`` is given, of the post-shock
    recovery-round distributions. Both runs additionally pass
    per-engine conservation modulo events. Returns the two results.
    """
    from repro.analysis.dynamics import recovery_rounds

    batch, scalar = run_scenario_both_engines(
        runner, state_factory, repetitions, rounds, seed
    )
    for result in (batch, scalar):
        assert_scenario_conservation(result, atol=conservation_atol)
    if pathwise:
        np.testing.assert_array_equal(batch.num_tasks, scalar.num_tasks)
        np.testing.assert_array_equal(
            batch.target_satisfied, scalar.target_satisfied
        )
        np.testing.assert_allclose(batch.psi0, scalar.psi0, atol=1e-9)
        np.testing.assert_allclose(
            batch.total_weight, scalar.total_weight, atol=1e-9
        )
        assert len(batch.events) == len(scalar.events)
        for record_b, record_s in zip(batch.events, scalar.events):
            assert record_b.round_index == record_s.round_index
            assert record_b.name == record_s.name
            np.testing.assert_array_equal(
                record_b.tasks_added, record_s.tasks_added
            )
            np.testing.assert_array_equal(
                record_b.tasks_removed, record_s.tasks_removed
            )
            np.testing.assert_array_equal(
                record_b.tasks_relocated, record_s.tasks_relocated
            )
    else:
        assert_ks_agreement(
            batch.psi0[-1],
            scalar.psi0[-1],
            min_pvalue=min_pvalue,
            label="batch vs scalar final potentials",
        )
        if shock_round is not None:
            recovery_batch = recovery_rounds(batch.target_satisfied, shock_round)
            recovery_scalar = recovery_rounds(
                scalar.target_satisfied, shock_round
            )
            assert_ks_agreement(
                recovery_batch,
                recovery_scalar,
                min_pvalue=min_pvalue,
                label="batch vs scalar recovery-round distributions",
            )
    return batch, scalar


def assert_counter_matches_scalar_law(
    min_pvalue: float = 0.01, require_all_converged: bool = True, **common
):
    """Counter-policy first-hit distributions match the scalar reference.

    The counter layout's core statistical contract: a KS two-sample test
    between ``rng_policy="counter"`` (batch engine) and the scalar
    spawned reference, over identical initial-state ensembles (both
    policies build states from the same spawned children). ``common`` is
    forwarded to
    :func:`repro.analysis.convergence.measure_convergence_rounds`.
    Returns the two measurements.
    """
    counter = measure_convergence_rounds(
        engine="batch", rng_policy="counter", **common
    )
    scalar = measure_convergence_rounds(engine="scalar", **common)
    assert counter.engine == "batch"
    assert scalar.engine == "scalar"
    if require_all_converged:
        assert counter.all_converged, "counter policy failed to converge"
        assert scalar.all_converged, "scalar reference failed to converge"
    assert_ks_agreement(
        counter.rounds,
        scalar.rounds,
        min_pvalue=min_pvalue,
        label="counter vs scalar first-hit distributions",
    )
    return counter, scalar


def assert_counter_scenario_agrees(
    runner,
    state_factory,
    repetitions: int,
    rounds: int,
    seed: int,
    shock_round: int | None = None,
    min_pvalue: float = 0.01,
    conservation_atol: float = 0.0,
):
    """Counter-policy scenario ensembles agree with the scalar reference.

    Counter runs are law-level for *both* task systems (the pathwise
    spawned contract does not apply), so the check is: per-engine
    conservation modulo events, KS agreement of the final potentials,
    and — when ``shock_round`` is given — of the post-shock
    recovery-round distributions. Returns (counter, scalar) results.
    """
    from repro.analysis.dynamics import recovery_rounds

    counter = runner.run_ensemble(
        state_factory,
        repetitions,
        rounds,
        seed=seed,
        engine="batch",
        rng_policy="counter",
    )
    scalar = runner.run_ensemble(
        state_factory, repetitions, rounds, seed=seed, engine="scalar"
    )
    assert counter.engine == "batch"
    assert scalar.engine == "scalar"
    assert_scenario_conservation(counter, atol=conservation_atol)
    assert_scenario_conservation(scalar, atol=conservation_atol)
    assert_ks_agreement(
        counter.psi0[-1],
        scalar.psi0[-1],
        min_pvalue=min_pvalue,
        label="counter vs scalar final potentials",
    )
    if shock_round is not None:
        assert_ks_agreement(
            recovery_rounds(counter.target_satisfied, shock_round),
            recovery_rounds(scalar.target_satisfied, shock_round),
            min_pvalue=min_pvalue,
            label="counter vs scalar recovery-round distributions",
        )
    return counter, scalar


def assert_topology_traces_agree(result_a, result_b) -> None:
    """Two scenario results record the identical spectral trace.

    Topology events are replica-stable and consume no stream
    randomness, so the per-round ``lambda2`` / ``gap_ratio`` /
    ``connected`` traces must be *identical* across engines, RNG
    policies and shard windows — not merely equal in law.
    ``assert_allclose`` treats matching ``inf`` entries (disconnected
    windows) as equal.
    """
    for result in (result_a, result_b):
        assert result.lambda2 is not None, "missing spectral trace"
    np.testing.assert_array_equal(
        result_a.connected,
        result_b.connected,
        err_msg="connectivity traces diverged",
    )
    np.testing.assert_allclose(
        result_a.lambda2,
        result_b.lambda2,
        atol=1e-9,
        err_msg="lambda_2 traces diverged",
    )
    np.testing.assert_allclose(
        result_a.gap_ratio,
        result_b.gap_ratio,
        atol=1e-9,
        err_msg="gap-ratio traces diverged",
    )


def assert_topology_window(
    result, partition_round: int, recover_round: int
) -> None:
    """The spectral trace shows the scheduled partition window exactly.

    Row ``t`` of the trace is the state *after* ``t`` rounds (events at
    round ``t`` apply after row ``t`` is recorded), so a partition at
    ``partition_round`` followed by a recovery at ``recover_round``
    must produce: disconnected rows with ``lambda_2 = 0`` and
    ``gap_ratio = inf`` exactly on ``[partition_round + 1,
    recover_round]``, and a bit-exact return to the baseline row-0
    values afterwards (the recovered graph is structurally equal to
    the original).
    """
    window = slice(partition_round + 1, recover_round + 1)
    assert not result.connected[window].any(), "partition window connected"
    assert np.all(result.lambda2[window] == 0.0)
    assert np.all(np.isinf(result.gap_ratio[window]))
    assert result.connected[partition_round], "pre-partition row disconnected"
    assert result.connected[recover_round + 1], "post-recovery row disconnected"
    assert result.lambda2[recover_round + 1] == result.lambda2[0]
    assert result.gap_ratio[recover_round + 1] == result.gap_ratio[0]
    assert result.gap_ratio[-1] == result.gap_ratio[0]


def assert_same_seed_determinism(run: Callable[[], tuple]) -> tuple:
    """``run()`` twice must give bit-identical array tuples."""
    first = run()
    second = run()
    for array_a, array_b in zip(first, second):
        np.testing.assert_array_equal(array_a, array_b)
    return first


def assert_prefix_stability(
    run: Callable[[int], tuple], small: int, large: int
) -> None:
    """Replica ``r``'s results must not depend on the ensemble size.

    ``run(k)`` runs a ``k``-replica ensemble and returns arrays whose
    leading axis is the replica axis; the ``small``-replica results must
    be a bit-identical prefix of the ``large``-replica results (spawned
    child streams are index-addressed, not count-dependent).
    """
    assert small <= large
    results_small = run(small)
    results_large = run(large)
    for array_small, array_large in zip(results_small, results_large):
        np.testing.assert_array_equal(array_small, array_large[:small])
