"""Tests for repro.analysis.statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import (
    bootstrap_ci,
    bootstrap_half_width,
    geometric_mean,
    summarize,
)
from repro.errors import ValidationError


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_ci_contains_mean(self):
        summary = summarize([5.0, 6.0, 7.0, 8.0, 9.0])
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_single_observation(self):
        summary = summarize([3.0])
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize([])


class TestBootstrapCi:
    def test_contains_true_mean_usually(self, rng):
        sample = rng.normal(10.0, 2.0, size=100)
        low, high = bootstrap_ci(sample, seed=1)
        assert low <= float(sample.mean()) <= high
        assert low <= 10.5 and high >= 9.5

    def test_narrows_with_confidence(self, rng):
        sample = rng.normal(0.0, 1.0, size=60)
        low50, high50 = bootstrap_ci(sample, confidence=0.5, seed=2)
        low99, high99 = bootstrap_ci(sample, confidence=0.99, seed=2)
        assert (high50 - low50) < (high99 - low99)

    def test_validation(self):
        with pytest.raises(ValidationError):
            bootstrap_ci([], seed=0)
        with pytest.raises(ValidationError):
            bootstrap_ci([1.0], confidence=1.5, seed=0)


class TestBootstrapHalfWidth:
    def test_matches_ci_on_clean_sample(self, rng):
        sample = rng.normal(10.0, 2.0, size=50)
        low, high = bootstrap_ci(sample, seed=3)
        assert bootstrap_half_width(sample, seed=3) == pytest.approx(
            (high - low) / 2.0
        )

    def test_nan_values_excluded(self, rng):
        sample = rng.normal(10.0, 2.0, size=50)
        polluted = np.concatenate([sample, [np.nan, np.nan, np.inf]])
        assert bootstrap_half_width(polluted, seed=4) == pytest.approx(
            bootstrap_half_width(sample, seed=4)
        )

    def test_all_nan_returns_nan(self):
        assert np.isnan(bootstrap_half_width([np.nan, np.nan], seed=0))
        assert np.isnan(bootstrap_half_width([], seed=0))

    def test_min_count_gate(self, rng):
        sample = [1.0, 2.0, np.nan, np.nan]
        # Two finite values < min_count=4 -> no CI yet.
        assert np.isnan(bootstrap_half_width(sample, seed=1, min_count=4))
        assert np.isfinite(bootstrap_half_width(sample, seed=1, min_count=2))

    def test_narrows_with_sample_size(self, rng):
        small = rng.normal(0.0, 1.0, size=10)
        large = np.concatenate([small, rng.normal(0.0, 1.0, size=490)])
        assert bootstrap_half_width(large, seed=5) < bootstrap_half_width(
            small, seed=5
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            bootstrap_half_width([1.0, 2.0], min_count=0)
        with pytest.raises(ValidationError):
            bootstrap_half_width([1.0, 2.0], confidence=1.5)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_equals_arithmetic_for_constant(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_positive_required(self):
        with pytest.raises(ValidationError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            geometric_mean([])
