"""Tests for repro.core.equilibrium."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import (
    blocking_edges,
    equilibrium_report,
    is_epsilon_nash,
    is_nash,
    is_weighted_exact_nash,
    max_improvement_incentive,
)
from repro.errors import ValidationError
from repro.graphs.generators import cycle_graph, path_graph
from repro.model.state import UniformState, WeightedState


class TestIsNash:
    def test_balanced_is_nash(self, ring8):
        state = UniformState(np.full(8, 10), np.ones(8))
        assert is_nash(state, ring8)

    def test_difference_of_one_is_nash(self):
        """l_i - l_j = 1 = 1/s_j is allowed (not a strict improvement)."""
        graph = path_graph(2)
        state = UniformState([3, 2], [1.0, 1.0])
        assert is_nash(state, graph)

    def test_difference_of_two_not_nash(self):
        graph = path_graph(2)
        state = UniformState([4, 2], [1.0, 1.0])
        assert not is_nash(state, graph)

    def test_speeds_change_threshold(self):
        """With fast target s_j = 2 the threshold is 1/2."""
        graph = path_graph(2)
        # loads 2 and 1.5: gap 0.5 = 1/s_j -> still NE.
        assert is_nash(UniformState([2, 3], [1.0, 2.0]), graph)
        # loads 3 and 1: gap 2 > 1/2 -> not NE.
        assert not is_nash(UniformState([3, 2], [1.0, 2.0]), graph)

    def test_non_adjacent_imbalance_still_nash(self):
        """NE is a local notion: distant imbalance does not violate it."""
        graph = path_graph(3)
        state = UniformState([3, 2, 1], [1.0, 1.0, 1.0])
        assert is_nash(state, graph)

    def test_empty_graph_vacuous(self):
        from repro.graphs.graph import Graph

        graph = Graph(2, [])
        state = UniformState([100, 0], [1.0, 1.0])
        assert is_nash(state, graph)


class TestEpsilonNash:
    def test_exact_nash_is_epsilon_nash(self, ring8):
        state = UniformState(np.full(8, 5), np.ones(8))
        assert is_epsilon_nash(state, ring8, 0.3)

    def test_looser_epsilon_easier(self):
        graph = path_graph(2)
        state = UniformState([8, 4], [1.0, 1.0])
        # gap 4 > 1: not exact NE.
        assert not is_nash(state, graph)
        # (1 - eps) * 8 - 4 <= 1 requires eps >= 3/8.
        assert not is_epsilon_nash(state, graph, 0.30)
        assert is_epsilon_nash(state, graph, 0.40)

    def test_epsilon_one_always(self, ring8):
        state = UniformState([80, 0, 0, 0, 0, 0, 0, 0], np.ones(8))
        assert is_epsilon_nash(state, ring8, 1.0)

    def test_epsilon_validated(self, ring8):
        state = UniformState(np.full(8, 5), np.ones(8))
        with pytest.raises(ValidationError):
            is_epsilon_nash(state, ring8, 1.5)


class TestWeightedExactNash:
    def test_lightest_task_decides(self):
        graph = path_graph(2)
        # Node 0 holds weights {1.0, 0.2}; loads 1.2 vs 0.
        # Gap 1.2 > 0.2/1: the light task can improve -> not exact NE.
        state = WeightedState([0, 0], [1.0, 0.2], [1.0, 1.0])
        assert not is_weighted_exact_nash(state, graph)

    def test_heavy_only_is_nash(self):
        graph = path_graph(2)
        # Single task of weight 1.0: gap 1.0 <= 1.0/1 -> NE.
        state = WeightedState([0], [1.0], [1.0, 1.0])
        assert is_weighted_exact_nash(state, graph)

    def test_empty_nodes_no_condition(self):
        graph = path_graph(3)
        state = WeightedState([1], [0.5], [1.0, 1.0, 1.0])
        assert is_weighted_exact_nash(state, graph)

    def test_threshold_vs_exact_gap(self):
        """A threshold-NE state need not be a per-task exact NE."""
        graph = path_graph(2)
        # Loads 0.9 vs 0.0: gap 0.9 <= 1 (threshold-NE) but light task
        # with w = 0.1 can still improve (0.9 > 0.1).
        state = WeightedState([0, 0, 0], [0.3, 0.3, 0.3], [1.0, 1.0])
        assert is_nash(state, graph)
        assert not is_weighted_exact_nash(state, graph)


class TestBlockingEdges:
    def test_empty_at_nash(self, ring8):
        state = UniformState(np.full(8, 5), np.ones(8))
        assert blocking_edges(state, ring8) == []

    def test_detects_direction(self):
        graph = path_graph(2)
        state = UniformState([5, 0], [1.0, 1.0])
        edges = blocking_edges(state, graph)
        assert edges == [(0, 1)]

    def test_sorted_by_violation(self):
        graph = path_graph(3)
        state = UniformState([9, 0, 5], [1.0, 1.0, 1.0])
        edges = blocking_edges(state, graph)
        assert edges[0] == (0, 1)  # gap 9 beats gap 5
        assert set(edges) == {(0, 1), (2, 1)}

    def test_epsilon_parameter(self):
        graph = path_graph(2)
        state = UniformState([8, 4], [1.0, 1.0])
        assert blocking_edges(state, graph, epsilon=0.4) == []
        assert blocking_edges(state, graph, epsilon=0.0) == [(0, 1)]


class TestMaxIncentive:
    def test_zero_at_balanced(self, ring8):
        state = UniformState(np.full(8, 5), np.ones(8))
        assert max_improvement_incentive(state, ring8) <= 0.0

    def test_positive_off_equilibrium(self):
        graph = path_graph(2)
        state = UniformState([5, 0], [1.0, 1.0])
        assert max_improvement_incentive(state, graph) == pytest.approx(4.0)

    def test_empty_graph(self):
        from repro.graphs.graph import Graph

        state = UniformState([5, 0], [1.0, 1.0])
        assert max_improvement_incentive(state, Graph(2, [])) == 0.0


class TestReport:
    def test_consistency(self):
        graph = cycle_graph(4)
        state = UniformState([10, 0, 0, 0], np.ones(4))
        report = equilibrium_report(state, graph, epsilon=0.5)
        assert not report.nash
        assert report.num_blocking_edges == len(blocking_edges(state, graph))
        assert report.max_incentive == pytest.approx(
            max_improvement_incentive(state, graph)
        )
        assert report.epsilon == 0.5

    def test_nash_report(self, ring8):
        state = UniformState(np.full(8, 3), np.ones(8))
        report = equilibrium_report(state, ring8)
        assert report.nash
        assert report.epsilon_nash
        assert report.num_blocking_edges == 0
