"""Tests for repro.core.stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stopping import (
    AnyStop,
    EpsilonNashStop,
    NashStop,
    NeverStop,
    PotentialThresholdStop,
    WeightedExactNashStop,
)
from repro.errors import ValidationError
from repro.graphs.generators import path_graph
from repro.model.state import UniformState, WeightedState


@pytest.fixture
def balanced(ring8):
    return UniformState(np.full(8, 10), np.ones(8))


@pytest.fixture
def skewed(ring8):
    return UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))


class TestNashStop:
    def test_satisfied_at_nash(self, ring8, balanced):
        assert NashStop().satisfied(balanced, ring8)

    def test_not_satisfied_off_nash(self, ring8, skewed):
        assert not NashStop().satisfied(skewed, ring8)

    def test_describe(self):
        assert "1/s_j" in NashStop().describe()


class TestEpsilonNashStop:
    def test_epsilon_validated(self):
        with pytest.raises(ValidationError):
            EpsilonNashStop(-0.1)

    def test_satisfied(self, ring8, balanced):
        assert EpsilonNashStop(0.5).satisfied(balanced, ring8)

    def test_property(self):
        assert EpsilonNashStop(0.25).epsilon == 0.25

    def test_describe_contains_eps(self):
        assert "0.25" in EpsilonNashStop(0.25).describe()


class TestWeightedExactNashStop:
    def test_requires_weighted(self, ring8, balanced):
        with pytest.raises(ValidationError):
            WeightedExactNashStop().satisfied(balanced, ring8)

    def test_weighted_check(self):
        graph = path_graph(2)
        rule = WeightedExactNashStop()
        nash_state = WeightedState([0], [1.0], [1.0, 1.0])
        assert rule.satisfied(nash_state, graph)
        off_state = WeightedState([0, 0], [1.0, 0.2], [1.0, 1.0])
        assert not rule.satisfied(off_state, graph)


class TestPotentialThresholdStop:
    def test_psi0_threshold(self, ring8, balanced, skewed):
        rule = PotentialThresholdStop(10.0, "psi0")
        assert rule.satisfied(balanced, ring8)
        assert not rule.satisfied(skewed, ring8)

    def test_psi1_threshold(self, ring8, balanced):
        assert PotentialThresholdStop(5.0, "psi1").satisfied(balanced, ring8)

    def test_invalid_potential_name(self):
        with pytest.raises(ValidationError):
            PotentialThresholdStop(1.0, "psi2")

    def test_negative_threshold(self):
        with pytest.raises(ValidationError):
            PotentialThresholdStop(-1.0)

    def test_threshold_property(self):
        assert PotentialThresholdStop(3.5).threshold == 3.5

    def test_describe(self):
        assert "psi0" in PotentialThresholdStop(2.0, "psi0").describe()


class TestAnyStop:
    def test_fires_when_any_satisfied(self, ring8, skewed):
        rule = AnyStop([NashStop(), PotentialThresholdStop(1e12, "psi0")])
        assert rule.satisfied(skewed, ring8)  # the loose threshold fires

    def test_not_fires_when_none(self, ring8, skewed):
        rule = AnyStop([NashStop(), PotentialThresholdStop(0.0, "psi0")])
        assert not rule.satisfied(skewed, ring8)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            AnyStop([])

    def test_describe_joins(self):
        text = AnyStop([NashStop(), NeverStop()]).describe()
        assert " or " in text


class TestNeverStop:
    def test_never(self, ring8, balanced):
        assert not NeverStop().satisfied(balanced, ring8)
