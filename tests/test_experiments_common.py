"""Tests for the shared experiment measurement helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments._common import (
    APPROX_SWEEP_FULL,
    APPROX_SWEEP_QUICK,
    EXACT_SWEEP_FULL,
    EXACT_SWEEP_QUICK,
    WEIGHTED_SWEEP_FULL,
    WEIGHTED_SWEEP_QUICK,
    measure_exact_nash_time,
    measure_psi_threshold_time,
)


class TestSweepDefinitions:
    def test_quick_subset_of_full_families(self):
        assert set(APPROX_SWEEP_QUICK) <= set(APPROX_SWEEP_FULL)
        assert set(EXACT_SWEEP_QUICK) <= set(EXACT_SWEEP_FULL)
        assert set(WEIGHTED_SWEEP_QUICK) <= set(WEIGHTED_SWEEP_FULL)

    def test_sizes_strictly_increasing(self):
        for sweep in (
            APPROX_SWEEP_QUICK,
            APPROX_SWEEP_FULL,
            EXACT_SWEEP_QUICK,
            EXACT_SWEEP_FULL,
            WEIGHTED_SWEEP_QUICK,
            WEIGHTED_SWEEP_FULL,
        ):
            for family, sizes in sweep.items():
                assert sizes == sorted(sizes), family
                assert len(set(sizes)) == len(sizes), family

    def test_at_least_three_sizes_each(self):
        for family, sizes in APPROX_SWEEP_QUICK.items():
            assert len(sizes) >= 3, family


class TestMeasurePsiThreshold:
    def test_cell_fields(self):
        cell = measure_psi_threshold_time(
            "torus", 9, m_factor=8.0, repetitions=2, seed=5
        )
        assert cell.family == "torus"
        assert cell.n == 9
        assert cell.m == 8 * 81
        assert cell.max_degree == 4
        assert cell.lambda2 == pytest.approx(3.0)
        assert cell.num_converged == 2
        assert cell.median_rounds <= cell.bound_rounds

    def test_deterministic_given_seed(self):
        a = measure_psi_threshold_time("ring", 8, 8.0, repetitions=2, seed=9)
        b = measure_psi_threshold_time("ring", 8, 8.0, repetitions=2, seed=9)
        assert a.median_rounds == b.median_rounds

    def test_seed_matters(self):
        a = measure_psi_threshold_time("ring", 12, 8.0, repetitions=1, seed=1)
        b = measure_psi_threshold_time("ring", 12, 8.0, repetitions=1, seed=2)
        # Different randomness; identical values possible but unlikely
        # for this size. Accept equality but require valid measurements.
        assert a.num_converged == b.num_converged == 1

    def test_size_rounded_to_admissible(self):
        cell = measure_psi_threshold_time("torus", 10, 8.0, repetitions=1, seed=1)
        assert cell.n == 9  # nearest square with side >= 3


class TestMeasureExactNash:
    def test_cell_converges(self):
        cell = measure_exact_nash_time("torus", 9, m_factor=8.0, repetitions=2, seed=4)
        assert cell.num_converged == 2
        assert cell.m == 72
        assert not np.isnan(cell.median_rounds)

    def test_budget_capping(self):
        """max_budget caps the round budget without breaking the cell."""
        cell = measure_exact_nash_time(
            "ring", 6, m_factor=8.0, repetitions=1, seed=3, max_budget=100_000
        )
        assert cell.num_converged == 1
