"""Tests for repro.model.placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.model.placement import (
    adversarial_placement,
    all_on_one_placement,
    counts_from_assignment,
    place_weighted_all_on_one,
    place_weighted_proportional,
    place_weighted_random,
    proportional_placement,
    random_placement,
)


class TestAllOnOne:
    def test_counts(self):
        counts = all_on_one_placement(4, 10, node=2)
        np.testing.assert_array_equal(counts, [0, 0, 10, 0])

    def test_bad_node(self):
        with pytest.raises(PlacementError):
            all_on_one_placement(4, 10, node=4)


class TestAdversarial:
    def test_targets_slowest(self):
        counts = adversarial_placement([3.0, 1.0, 2.0], 7)
        np.testing.assert_array_equal(counts, [0, 7, 0])


class TestRandomPlacement:
    def test_total_preserved(self):
        counts = random_placement(5, 100, seed=0)
        assert counts.sum() == 100

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_placement(5, 50, seed=1), random_placement(5, 50, seed=1)
        )

    def test_roughly_uniform(self):
        counts = random_placement(4, 40000, seed=2)
        assert np.all(np.abs(counts - 10000) < 500)


class TestProportionalPlacement:
    def test_exact_total(self):
        counts = proportional_placement([1.0, 2.0, 3.0], 100)
        assert counts.sum() == 100

    def test_proportionality(self):
        counts = proportional_placement([1.0, 3.0], 400)
        np.testing.assert_array_equal(counts, [100, 300])

    def test_within_one_of_ideal(self):
        speeds = np.array([1.0, 1.7, 2.3, 4.0])
        m = 987
        counts = proportional_placement(speeds, m)
        ideal = m * speeds / speeds.sum()
        assert np.all(np.abs(counts - ideal) < 1.0)

    def test_zero_tasks(self):
        np.testing.assert_array_equal(proportional_placement([1.0, 1.0], 0), [0, 0])

    def test_bad_speeds(self):
        with pytest.raises(PlacementError):
            proportional_placement([1.0, 0.0], 5)


class TestCountsFromAssignment:
    def test_basic(self):
        counts = counts_from_assignment([0, 0, 2], 3)
        np.testing.assert_array_equal(counts, [2, 0, 1])

    def test_out_of_range(self):
        with pytest.raises(PlacementError):
            counts_from_assignment([3], 3)


class TestWeightedPlacements:
    def test_all_on_one(self):
        locations = place_weighted_all_on_one(5, node=3)
        np.testing.assert_array_equal(locations, [3, 3, 3, 3, 3])

    def test_random_range(self):
        locations = place_weighted_random(100, 7, seed=0)
        assert locations.min() >= 0
        assert locations.max() < 7

    def test_proportional_balances_loads(self, rng):
        weights = rng.uniform(0.1, 1.0, size=300)
        speeds = np.array([1.0, 2.0, 1.0, 3.0])
        locations = place_weighted_proportional(weights, speeds, seed=1)
        node_weight = np.bincount(locations, weights=weights, minlength=4)
        loads = node_weight / speeds
        # LPT-style greedy should land within one max task weight of even.
        assert loads.max() - loads.min() <= 1.0

    def test_proportional_bad_speeds(self):
        with pytest.raises(PlacementError):
            place_weighted_proportional([0.5], [0.0])
