"""Tests for repro.theory.bounds."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.graphs.generators import cycle_graph, torus_graph
from repro.theory.bounds import (
    GraphQuantities,
    delta_from_epsilon,
    epsilon_from_delta,
    graph_quantities,
    observation_328_factor,
    prior_work_exact_bound,
    theorem11_m_threshold,
    theorem11_round_bound,
    theorem12_round_bound,
    theorem13_round_bound,
    theorem13_weight_threshold,
)


@pytest.fixture
def ring_quantities():
    return graph_quantities(cycle_graph(8))


class TestGraphQuantities:
    def test_ring(self, ring_quantities):
        assert ring_quantities.n == 8
        assert ring_quantities.max_degree == 2
        assert ring_quantities.lambda2 == pytest.approx(
            2.0 - 2.0 * math.cos(2.0 * math.pi / 8)
        )
        assert ring_quantities.diameter is None

    def test_with_diameter(self):
        quantities = graph_quantities(torus_graph(3), with_diameter=True)
        assert quantities.diameter == 2


class TestTheorem11:
    def test_formula(self, ring_quantities):
        """bound = 2 * 2 gamma ln(m/n), gamma = 32 Delta s_max^2/lambda_2."""
        m = 800
        gamma = 32 * 2 * 1.0 / ring_quantities.lambda2
        expected = 4.0 * gamma * math.log(m / 8)
        assert theorem11_round_bound(ring_quantities, m, 1.0) == pytest.approx(expected)

    def test_log_floor(self, ring_quantities):
        """For m close to n the log term floors at 1."""
        bound = theorem11_round_bound(ring_quantities, 8, 1.0)
        gamma = 32 * 2 / ring_quantities.lambda2
        assert bound == pytest.approx(4.0 * gamma)

    def test_speed_scaling(self, ring_quantities):
        slow = theorem11_round_bound(ring_quantities, 800, 1.0)
        fast = theorem11_round_bound(ring_quantities, 800, 2.0)
        assert fast == pytest.approx(4.0 * slow)

    def test_m_threshold(self):
        """m >= 8 delta s_max S n^2 (Lemma 3.17)."""
        assert theorem11_m_threshold(4, 4.0, 1.0, 2.0) == pytest.approx(
            8 * 2 * 1 * 4 * 16
        )

    def test_m_threshold_delta_validated(self):
        with pytest.raises(ValidationError):
            theorem11_m_threshold(4, 4.0, 1.0, 1.0)


class TestEpsilonDelta:
    def test_roundtrip(self):
        for delta in [1.5, 2.0, 5.0]:
            assert delta_from_epsilon(epsilon_from_delta(delta)) == pytest.approx(delta)

    def test_known_value(self):
        assert epsilon_from_delta(2.0) == pytest.approx(2.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            epsilon_from_delta(1.0)
        with pytest.raises(ValidationError):
            delta_from_epsilon(1.0)


class TestTheorem12:
    def test_formula(self, ring_quantities):
        """607 Delta^2 s_max^4 / eps^2 * n / lambda_2."""
        expected = 607.0 * 4 * 1.0 * 8 / ring_quantities.lambda2
        assert theorem12_round_bound(ring_quantities, 1.0) == pytest.approx(expected)

    def test_granularity_quadratic(self, ring_quantities):
        base = theorem12_round_bound(ring_quantities, 1.0, 1.0)
        fine = theorem12_round_bound(ring_quantities, 1.0, 0.5)
        assert fine == pytest.approx(4.0 * base)

    def test_granularity_validated(self, ring_quantities):
        with pytest.raises(ValidationError):
            theorem12_round_bound(ring_quantities, 1.0, 1.5)


class TestTheorem13:
    def test_smin_scaling(self, ring_quantities):
        base = theorem13_round_bound(ring_quantities, 800, 2.0, 1.0)
        # Larger s_min shrinks the bound linearly.
        faster = theorem13_round_bound(ring_quantities, 800, 2.0, 2.0)
        assert faster == pytest.approx(base / 2.0)

    def test_weight_threshold(self):
        """W > 8 delta (s_max/s_min) S n^2."""
        assert theorem13_weight_threshold(4, 4.0, 2.0, 1.0, 2.0) == pytest.approx(
            8 * 2 * 2 * 4 * 16
        )


class TestObservation328:
    def test_factor(self):
        quantities = graph_quantities(cycle_graph(8), with_diameter=True)
        assert observation_328_factor(quantities) == pytest.approx(2 * 4)

    def test_requires_diameter(self, ring_quantities):
        with pytest.raises(ValidationError):
            observation_328_factor(ring_quantities)

    def test_prior_bound_larger(self):
        quantities = graph_quantities(cycle_graph(8), with_diameter=True)
        ours = theorem12_round_bound(quantities, 1.0)
        prior = prior_work_exact_bound(quantities, 1.0)
        assert prior == pytest.approx(ours * 8)
        assert prior > ours
