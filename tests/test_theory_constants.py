"""Tests for repro.theory.constants."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.theory.constants import (
    PSI_C_FACTOR,
    gamma_factor,
    psi_critical,
    psi_critical_weighted,
)


class TestGamma:
    def test_formula(self):
        """gamma = 32 Delta s_max^2 / lambda_2."""
        assert gamma_factor(4, 2.0, 1.0) == pytest.approx(64.0)
        assert gamma_factor(4, 2.0, 3.0) == pytest.approx(64.0 * 9.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            gamma_factor(0, 1.0, 1.0)
        with pytest.raises(ValidationError):
            gamma_factor(2, -1.0, 1.0)


class TestPsiCritical:
    def test_formula(self):
        """psi_c = 16 n Delta s_max / lambda_2 (Theorem 1.1)."""
        assert psi_critical(10, 4, 2.0, 1.0) == pytest.approx(16 * 10 * 4 / 2.0)

    def test_default_factor_is_16(self):
        assert PSI_C_FACTOR == 16.0

    def test_factor_override(self):
        """The Definition 3.12 variant (factor 8) is half the default."""
        full = psi_critical(10, 4, 2.0, 1.0)
        half = psi_critical(10, 4, 2.0, 1.0, factor=8.0)
        assert half == pytest.approx(full / 2.0)

    def test_scales_with_smax(self):
        assert psi_critical(10, 4, 2.0, 3.0) == pytest.approx(
            3.0 * psi_critical(10, 4, 2.0, 1.0)
        )


class TestPsiCriticalWeighted:
    def test_formula(self):
        """psi_c = 16 n Delta / lambda_2 * s_max / s_min^2 (Theorem 1.3)."""
        value = psi_critical_weighted(10, 4, 2.0, 3.0, 1.0)
        assert value == pytest.approx(16 * 10 * 4 / 2.0 * 3.0)

    def test_smin_dependence(self):
        base = psi_critical_weighted(10, 4, 2.0, 3.0, 1.0)
        halved = psi_critical_weighted(10, 4, 2.0, 3.0, 2.0)
        assert halved == pytest.approx(base / 4.0)

    def test_reduces_to_uniform_for_smin_one(self):
        assert psi_critical_weighted(10, 4, 2.0, 3.0, 1.0) == pytest.approx(
            psi_critical(10, 4, 2.0, 3.0)
        )
