"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; each must execute
end-to-end in a fresh interpreter and print its closing message.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

EXPECTED_CLOSING = {
    "quickstart.py": "Theorem 1.1 bound",
    "heterogeneous_cluster.py": "max remaining incentive",
    "weighted_jobs.py": "churn the paper designs away",
    "protocol_comparison.py": "damped diffusion",
    "spectral_analysis.py": "quadratic penalty",
    "resilient_service.py": "balance is an attractor",
    "dynamic_service.py": "absorbed by one memoryless protocol",
}


@pytest.mark.parametrize("script_name", sorted(EXPECTED_CLOSING))
def test_example_runs(script_name):
    script = EXAMPLES_DIR / script_name
    assert script.exists(), f"missing example {script_name}"
    # The child interpreter needs the src layout on its path even when the
    # parent pytest found `repro` via pyproject's `pythonpath` setting
    # (which does not propagate to subprocesses).
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr
    assert EXPECTED_CLOSING[script_name] in completed.stdout


def test_examples_directory_complete():
    """At least the seven documented examples exist (and nothing is empty)."""
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 7
    for script in scripts:
        assert script.read_text().strip(), f"{script.name} is empty"
