"""Tests for dynamic-topology scenario events and the spectral trace.

Covers the derived-graph events (:class:`EdgeFailure`,
:class:`EdgeRecovery`, :class:`NetworkPartition`), their threading
through :class:`ScenarioRunner` on both engines and both RNG policies,
the per-round ``lambda2`` / ``gap_ratio`` / ``connected`` observables,
sharded-vs-monolithic ensemble equality, and the
``topology-resilience`` measurement cell.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocols import SelfishUniformProtocol
from repro.core.simulator import Simulator
from repro.core.stopping import PotentialThresholdStop
from repro.errors import ModelError, SimulationError, ValidationError
from repro.graphs.generators import cycle_graph, fat_tree_graph, torus_graph
from repro.model.placement import random_placement
from repro.model.state import UniformState
from repro.scenarios import (
    EdgeFailure,
    EdgeRecovery,
    NetworkPartition,
    Schedule,
    ScenarioRunner,
    at,
    merge_replica_results,
)
from repro.utils.rng import derive_seed, make_rng

from tests.equivalence import (
    assert_same_seed_determinism,
    assert_scenario_conservation,
    assert_topology_traces_agree,
    assert_topology_window,
)

FAIL_ROUND = 5
PARTITION_ROUND = 10
RECOVER_ROUND = 15
HORIZON = 25


def _uniform_factory(n, m):
    def factory(rng):
        return UniformState(random_placement(n, m, rng), np.ones(n))

    return factory


def _topology_runner(graph, fail_fraction=0.3):
    schedule = Schedule(
        [
            at(FAIL_ROUND, EdgeFailure(fraction=fail_fraction, seed=11)),
            at(
                PARTITION_ROUND,
                NetworkPartition(tuple(range(graph.num_vertices // 2))),
            ),
            at(RECOVER_ROUND, EdgeRecovery()),
        ]
    )
    return ScenarioRunner(
        graph,
        SelfishUniformProtocol(),
        schedule,
        target=PotentialThresholdStop(400.0, "psi0"),
    )


class TestTopologyEventSemantics:
    def test_edge_failure_explicit_edges(self):
        graph = cycle_graph(8)
        event = EdgeFailure(edges=((0, 1), (4, 5)))
        derived = event.transform_graph(graph, graph, 3)
        assert derived.num_edges == graph.num_edges - 2
        assert derived.num_vertices == graph.num_vertices

    def test_edge_failure_fraction_deterministic(self):
        graph = torus_graph(4)
        event = EdgeFailure(fraction=0.25, seed=7)
        first = event.transform_graph(graph, graph, 9)
        second = event.transform_graph(graph, graph, 9)
        assert first == second
        assert first.num_edges == graph.num_edges - round(0.25 * graph.num_edges)

    def test_edge_failure_fraction_varies_with_round(self):
        graph = torus_graph(4)
        event = EdgeFailure(fraction=0.25, seed=7)
        assert event.transform_graph(graph, graph, 1) != event.transform_graph(
            graph, graph, 2
        )

    def test_edge_recovery_returns_base_graph(self):
        graph = torus_graph(4)
        degraded = EdgeFailure(fraction=0.5, seed=1).transform_graph(
            graph, graph, 0
        )
        restored = EdgeRecovery().transform_graph(degraded, graph, 5)
        assert restored is graph

    def test_partition_disconnects_named_side(self):
        from repro.spectral.eigen import algebraic_connectivity

        graph = torus_graph(4)
        cut = NetworkPartition(tuple(range(8))).transform_graph(graph, graph, 0)
        assert algebraic_connectivity(cut, strict=False) == 0.0
        # no edge crosses the cut
        side = np.zeros(16, dtype=bool)
        side[:8] = True
        assert not np.any(side[cut.edges[:, 0]] != side[cut.edges[:, 1]])

    def test_partition_validation(self):
        with pytest.raises(ValidationError):
            NetworkPartition(())
        with pytest.raises(ValidationError):
            NetworkPartition((0, 0))
        with pytest.raises(ValidationError):
            NetworkPartition((-1,))
        graph = cycle_graph(6)
        with pytest.raises(ModelError):
            # proper subset required: all vertices is not a partition
            NetworkPartition(tuple(range(6))).transform_graph(graph, graph, 0)

    def test_edge_failure_validation(self):
        with pytest.raises(ValidationError):
            EdgeFailure()
        with pytest.raises(ValidationError):
            EdgeFailure(edges=((0, 1),), fraction=0.5)
        with pytest.raises(ValidationError):
            EdgeFailure(fraction=1.5)

    def test_topology_events_refuse_state_apply(self):
        graph = cycle_graph(6)
        state = UniformState(
            random_placement(6, 30, make_rng(0)), np.ones(6)
        )
        event = EdgeRecovery()
        with pytest.raises(ModelError):
            event.apply(state, graph, make_rng(0))

    def test_swap_graph_rejects_size_mismatch(self):
        simulator = Simulator(cycle_graph(6), SelfishUniformProtocol(), seed=1)
        with pytest.raises(SimulationError):
            simulator.swap_graph(cycle_graph(7))


class TestTopologyScenarioRuns:
    @pytest.fixture
    def graph(self):
        return fat_tree_graph(4)

    def test_scalar_trace_shows_partition_window(self, graph):
        # the scalar engine always consumes spawned streams
        runner = _topology_runner(graph)
        result = runner.run_ensemble(
            _uniform_factory(graph.num_vertices, 120),
            3,
            HORIZON,
            seed=42,
            engine="scalar",
        )
        assert result.lambda2.shape == (HORIZON + 1,)
        assert result.gap_ratio.shape == (HORIZON + 1,)
        assert result.connected.shape == (HORIZON + 1,)
        assert_topology_window(result, PARTITION_ROUND, RECOVER_ROUND)
        assert_scenario_conservation(result)

    def test_engines_record_identical_traces(self, graph, cli_rng_policy):
        runner = _topology_runner(graph)
        factory = _uniform_factory(graph.num_vertices, 120)
        scalar = runner.run_ensemble(
            factory, 3, HORIZON, seed=42, engine="scalar",
        )
        batch = runner.run_ensemble(
            factory, 3, HORIZON, seed=42, engine="batch",
            rng_policy=cli_rng_policy,
        )
        assert_topology_traces_agree(scalar, batch)
        assert_scenario_conservation(batch)

    def test_policies_record_identical_traces(self, graph):
        runner = _topology_runner(graph)
        factory = _uniform_factory(graph.num_vertices, 120)
        spawned = runner.run_ensemble(
            factory, 3, HORIZON, seed=42, engine="batch",
            rng_policy="spawned",
        )
        counter = runner.run_ensemble(
            factory, 3, HORIZON, seed=42, engine="batch",
            rng_policy="counter",
        )
        assert_topology_traces_agree(spawned, counter)

    def test_same_seed_determinism(self, graph, cli_rng_policy):
        runner = _topology_runner(graph)
        factory = _uniform_factory(graph.num_vertices, 120)

        def run():
            result = runner.run_ensemble(
                factory, 3, HORIZON, seed=42, engine="batch",
                rng_policy=cli_rng_policy,
            )
            return (
                result.num_tasks,
                result.psi0,
                result.lambda2,
                result.gap_ratio,
                result.connected,
            )

        assert_same_seed_determinism(run)

    def test_sharded_matches_monolithic(self, graph):
        runner = _topology_runner(graph)
        factory = _uniform_factory(graph.num_vertices, 120)
        monolithic = runner.run_ensemble(
            factory, 4, HORIZON, seed=42, engine="batch"
        )
        shards = [
            runner.run_ensemble(
                factory, 4, HORIZON, seed=42, engine="batch",
                replica_offset=offset, replica_count=2,
            )
            for offset in (0, 2)
        ]
        merged = merge_replica_results(shards)
        np.testing.assert_array_equal(merged.num_tasks, monolithic.num_tasks)
        np.testing.assert_array_equal(merged.psi0, monolithic.psi0)
        np.testing.assert_array_equal(
            merged.target_satisfied, monolithic.target_satisfied
        )
        assert_topology_traces_agree(merged, monolithic)

    def test_event_records_have_zero_magnitude(self, graph):
        runner = _topology_runner(graph)
        result = runner.run_ensemble(
            _uniform_factory(graph.num_vertices, 120),
            2,
            HORIZON,
            seed=42,
            engine="batch",
        )
        assert len(result.events) == 3
        for record in result.events:
            assert np.all(record.tasks_added == 0)
            assert np.all(record.tasks_removed == 0)
            assert np.all(record.weight_added == 0.0)
            assert np.all(record.weight_removed == 0.0)

    def test_trace_absent_without_topology_support(self, graph):
        """A plain run still records the (static) spectral trace."""
        runner = ScenarioRunner(graph, SelfishUniformProtocol())
        result = runner.run_ensemble(
            _uniform_factory(graph.num_vertices, 120),
            2,
            8,
            seed=42,
            engine="batch",
        )
        assert np.all(result.connected)
        assert np.all(result.gap_ratio == result.gap_ratio[0])


class TestTopologyResilienceCell:
    def test_measurement_roundtrip(self, cli_rng_policy):
        from repro.experiments.scenario_cells import (
            measure_topology_resilience,
        )

        cell = measure_topology_resilience(
            "fat-tree",
            20,
            m_factor=8.0,
            repetitions=4,
            seed=20120716,
            rng_policy=cli_rng_policy,
            fail_fraction=0.25,
            fail_round=20,
            partition_round=45,
            recover_round=70,
            horizon=140,
        )
        assert cell.family == "fat-tree"
        assert cell.n == 20
        assert cell.num_replicas == 4
        assert np.isinf(cell.gap_partitioned)
        assert cell.gap_restored
        assert cell.disconnected_rounds >= 70 - 45
        assert cell.num_recovered == 4
        assert len(cell.gap_series) == 141
        assert cell.gap_series[-1] == cell.gap_series[0]

    def test_registered_in_executor(self):
        from repro.experiments.executor import (
            MEASUREMENT_KINDS,
            _SCENARIO_KINDS,
        )

        assert "topology-resilience" in MEASUREMENT_KINDS
        assert "topology-resilience" in _SCENARIO_KINDS

    def test_experiment_registered(self):
        from repro.experiments.registry import available_experiments

        assert "topology-failures" in available_experiments()
