"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.rng import (
    RNG_POLICIES,
    CounterStreams,
    SpawnedStreams,
    as_stream_layout,
    check_rng_policy,
    derive_seed,
    make_rng,
    make_streams,
    spawn_rngs,
)


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError):
            make_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(ValidationError):
            make_rng("seed")  # type: ignore[arg-type]

    def test_numpy_integer_accepted(self):
        assert isinstance(make_rng(np.int64(7)), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent_streams(self):
        children = spawn_rngs(7, 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.allclose(a, b)

    def test_reproducible(self):
        first = [g.random(3) for g in spawn_rngs(9, 3)]
        second = [g.random(3) for g in spawn_rngs(9, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        generator = np.random.default_rng(3)
        children = spawn_rngs(generator, 2)
        assert len(children) == 2

    def test_generator_input_is_not_mutated(self):
        """Regression: spawning children must not consume the caller's
        spawn counter (it used to call ``seed.spawn(1)`` in a loop)."""
        generator = np.random.default_rng(3)
        sequence = generator.bit_generator.seed_seq
        before = sequence.n_children_spawned
        spawn_rngs(generator, 4)
        assert sequence.n_children_spawned == before
        # The generator's own stream is untouched too.
        reference = np.random.default_rng(3).random(5)
        np.testing.assert_array_equal(generator.random(5), reference)

    def test_generator_input_repeatable(self):
        """Regression: two calls with the same generator used to yield
        silently different streams (each call advanced the spawn
        counter)."""
        generator = np.random.default_rng(3)
        first = [g.random(4) for g in spawn_rngs(generator, 3)]
        second = [g.random(4) for g in spawn_rngs(generator, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_generator_input_matches_one_shot_spawn_numbering(self):
        """Children come from one ``spawn(count)`` call on an unmutated
        copy, so they match spawning directly off the seed sequence."""
        generator = np.random.default_rng(3)
        children = spawn_rngs(generator, 3)
        expected = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(3).spawn(3)
        ]
        for child, reference in zip(children, expected):
            np.testing.assert_array_equal(child.random(4), reference.random(4))

    def test_seed_sequence_input_accepted_and_unmutated(self):
        sequence = np.random.SeedSequence(11)
        first = [g.random(4) for g in spawn_rngs(sequence, 3)]
        assert sequence.n_children_spawned == 0
        second = [g.random(4) for g in spawn_rngs(sequence, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_int_seed_children_unchanged_by_fix(self):
        """The int-seed derivation is part of the reproducibility
        contract: children must equal a direct SeedSequence spawn."""
        children = spawn_rngs(9, 3)
        expected = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(9).spawn(3)
        ]
        for child, reference in zip(children, expected):
            np.testing.assert_array_equal(child.random(4), reference.random(4))

    def test_prefix_stability(self):
        small = [g.random(3) for g in spawn_rngs(5, 2)]
        large = [g.random(3) for g in spawn_rngs(5, 6)]
        for x, y in zip(small, large):
            np.testing.assert_array_equal(x, y)

    def test_offset_window_matches_monolithic_children(self):
        """Child ``offset + k`` of a window equals child ``offset + k``
        of the monolithic spawn — the shard contract."""
        monolithic = [g.random(4) for g in spawn_rngs(5, 7)]
        window = [g.random(4) for g in spawn_rngs(5, 3, offset=2)]
        for got, expected in zip(window, monolithic[2:5]):
            np.testing.assert_array_equal(got, expected)

    def test_offset_zero_is_default_behaviour(self):
        plain = [g.random(4) for g in spawn_rngs(5, 3)]
        explicit = [g.random(4) for g in spawn_rngs(5, 3, offset=0)]
        for x, y in zip(plain, explicit):
            np.testing.assert_array_equal(x, y)

    def test_offset_windows_concatenate_to_monolithic(self):
        monolithic = [g.random(2) for g in spawn_rngs(11, 6)]
        shards = [
            g.random(2)
            for offset, count in ((0, 2), (2, 2), (4, 2))
            for g in spawn_rngs(11, count, offset=offset)
        ]
        for got, expected in zip(shards, monolithic):
            np.testing.assert_array_equal(got, expected)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rngs(1, 2, offset=-1)

    def test_offset_does_not_mutate_caller_sequence(self):
        sequence = np.random.SeedSequence(11)
        spawn_rngs(sequence, 2, offset=3)
        assert sequence.n_children_spawned == 0


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "a", 1) == derive_seed(5, "a", 1)

    def test_component_sensitivity(self):
        assert derive_seed(5, "a", 1) != derive_seed(5, "a", 2)
        assert derive_seed(5, "a", 1) != derive_seed(5, "b", 1)
        assert derive_seed(5, "a", 1) != derive_seed(6, "a", 1)

    def test_non_negative(self):
        for k in range(20):
            assert derive_seed(k, "x", k) >= 0

    def test_bad_component_type(self):
        with pytest.raises(ValidationError):
            derive_seed(1, 2.5)  # type: ignore[arg-type]

    def test_usable_as_seed(self):
        seed = derive_seed(11, "experiment", 3)
        generator = make_rng(seed)
        assert 0.0 <= generator.random() < 1.0


class TestStreamLayoutPlumbing:
    def test_policies_and_factory(self):
        assert RNG_POLICIES == ("spawned", "counter")
        assert check_rng_policy("spawned") == "spawned"
        with pytest.raises(ValidationError):
            check_rng_policy("philox")
        spawned = make_streams("spawned", 7, 4)
        counter = make_streams("counter", 7, 4)
        assert isinstance(spawned, SpawnedStreams)
        assert isinstance(counter, CounterStreams)
        assert spawned.policy == "spawned" and counter.policy == "counter"
        assert len(spawned) == len(counter) == 4

    def test_spawned_wraps_matching_children(self):
        layout = make_streams("spawned", 7, 3)
        reference = spawn_rngs(7, 3)
        for child, expected in zip(layout.generators, reference):
            np.testing.assert_array_equal(child.random(4), expected.random(4))

    def test_as_stream_layout_wraps_lists_and_passes_layouts(self):
        generators = spawn_rngs(1, 2)
        layout = as_stream_layout(generators)
        assert isinstance(layout, SpawnedStreams)
        assert layout[0] is generators[0]
        assert as_stream_layout(layout) is layout

    def test_cross_policy_access_raises(self):
        counter = CounterStreams(5, 2)
        with pytest.raises(ValidationError):
            counter.generators
        spawned = SpawnedStreams(seed=5, num_replicas=2)
        with pytest.raises(ValidationError):
            spawned.site("anything")


class TestCounterStreams:
    def test_site_before_begin_round_raises(self):
        streams = CounterStreams(3, 2)
        with pytest.raises(ValidationError):
            streams.site("kernel")

    def test_generator_seed_rejected(self):
        with pytest.raises(ValidationError):
            CounterStreams(np.random.default_rng(0), 2)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError):
            CounterStreams(-1, 2)

    def test_none_seed_gets_entropy_root(self):
        assert CounterStreams(None, 2).root_seed >= 0

    def test_site_streams_deterministic(self):
        def draw():
            streams = CounterStreams(9, 4)
            streams.begin_round(3)
            return streams.site("kernel").random((4, 5))

        np.testing.assert_array_equal(draw(), draw())

    def test_sites_distinct_within_round(self):
        streams = CounterStreams(9, 4)
        streams.begin_round(0)
        a = streams.site("kernel").random(8)
        b = streams.site("kernel").random(8)
        assert not np.allclose(a, b)  # sequence number separates repeats

    def test_sites_distinct_across_rounds_and_labels(self):
        streams = CounterStreams(9, 4)
        streams.begin_round(0)
        first = streams.site("kernel").random(8)
        second = streams.site("event").random(8)
        streams.begin_round(1)
        third = streams.site("kernel").random(8)
        assert not np.allclose(first, second)
        assert not np.allclose(first, third)

    def test_roots_separate_streams(self):
        values = []
        for root in (1, 2):
            streams = CounterStreams(root, 2)
            streams.begin_round(0)
            values.append(streams.site("kernel").random(8))
        assert not np.allclose(values[0], values[1])

    def test_begin_round_resets_site_sequence(self):
        streams = CounterStreams(9, 4)
        streams.begin_round(0)
        first = streams.site("kernel").random(8)
        streams.begin_round(0)
        again = streams.site("kernel").random(8)
        np.testing.assert_array_equal(first, again)

    def test_row_prefix_independent_of_block_height(self):
        """Replica rows of a site block are a prefix-stable function of
        the row index (row-major Philox counter addressing)."""
        streams = CounterStreams(9, 8)
        streams.begin_round(5)
        tall = streams.site("kernel").random((8, 6))
        streams.begin_round(5)
        short = streams.site("kernel").random((3, 6))
        np.testing.assert_array_equal(short, tall[:3])


class TestCounterStreamWindows:
    """Replica-window (sharded) CounterStreams layouts."""

    def test_site_uniforms_matches_whole_stack_site(self):
        """On a full (unwindowed) stack, the replica-addressed block
        draw reproduces the packed ``site().random((R, M))`` draw."""
        streams = CounterStreams(9, 6)
        streams.begin_round(2)
        packed = streams.site("kernel").random((6, 5))
        streams.begin_round(2)
        addressed = streams.site_uniforms("kernel", np.arange(6), 5)
        np.testing.assert_array_equal(addressed, packed)

    def test_window_rows_match_monolithic_rows(self):
        """A window's rows equal the same global rows of the monolithic
        layout — the counter shard contract."""
        full = CounterStreams(9, 8)
        full.begin_round(3)
        monolithic = full.site_uniforms("kernel", np.arange(8), 4)
        window = CounterStreams(9, 3, replica_offset=2, total_replicas=8)
        window.begin_round(3)
        local = window.site_uniforms("kernel", np.arange(3), 4)
        np.testing.assert_array_equal(local, monolithic[2:5])

    def test_window_gap_rows(self):
        """Non-contiguous (retired-replica) row subsets address their
        own global rows only."""
        full = CounterStreams(9, 8)
        full.begin_round(0)
        monolithic = full.site_uniforms("kernel", np.arange(8), 3)
        window = CounterStreams(9, 4, replica_offset=4, total_replicas=8)
        window.begin_round(0)
        rows = np.array([0, 2, 3])  # local -> global 4, 6, 7
        local = window.site_uniforms("kernel", rows, 3)
        np.testing.assert_array_equal(local, monolithic[[4, 6, 7]])

    def test_windowed_whole_stack_site_refused(self):
        window = CounterStreams(9, 3, replica_offset=2, total_replicas=8)
        window.begin_round(0)
        with pytest.raises(ValidationError, match="windowed"):
            window.site("kernel")
        # The replica-addressed draw is the windowed layout's API.
        window.site_uniforms("kernel", np.arange(3), 2)

    def test_window_properties(self):
        window = CounterStreams(9, 3, replica_offset=2, total_replicas=8)
        assert window.replica_offset == 2
        assert window.total_replicas == 8
        assert window.is_windowed
        assert len(window) == 3
        full = CounterStreams(9, 8)
        assert not full.is_windowed
        assert full.total_replicas == 8

    def test_window_validation(self):
        with pytest.raises(ValidationError):
            CounterStreams(9, 3, replica_offset=-1)
        with pytest.raises(ValidationError):
            CounterStreams(9, 5, replica_offset=4, total_replicas=8)
