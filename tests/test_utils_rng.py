"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.rng import derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError):
            make_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(ValidationError):
            make_rng("seed")  # type: ignore[arg-type]

    def test_numpy_integer_accepted(self):
        assert isinstance(make_rng(np.int64(7)), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent_streams(self):
        children = spawn_rngs(7, 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.allclose(a, b)

    def test_reproducible(self):
        first = [g.random(3) for g in spawn_rngs(9, 3)]
        second = [g.random(3) for g in spawn_rngs(9, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        generator = np.random.default_rng(3)
        children = spawn_rngs(generator, 2)
        assert len(children) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "a", 1) == derive_seed(5, "a", 1)

    def test_component_sensitivity(self):
        assert derive_seed(5, "a", 1) != derive_seed(5, "a", 2)
        assert derive_seed(5, "a", 1) != derive_seed(5, "b", 1)
        assert derive_seed(5, "a", 1) != derive_seed(6, "a", 1)

    def test_non_negative(self):
        for k in range(20):
            assert derive_seed(k, "x", k) >= 0

    def test_bad_component_type(self):
        with pytest.raises(ValidationError):
            derive_seed(1, 2.5)  # type: ignore[arg-type]

    def test_usable_as_seed(self):
        seed = derive_seed(11, "experiment", 3)
        generator = make_rng(seed)
        assert 0.0 <= generator.random() < 1.0
