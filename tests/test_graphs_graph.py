"""Tests for repro.graphs.graph.Graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_basic_triangle(self):
        graph = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        np.testing.assert_array_equal(graph.degrees, [2, 2, 2])

    def test_edges_normalized_and_deduplicated(self):
        graph = Graph(3, [(1, 0), (0, 1), (2, 1)])
        assert graph.num_edges == 2
        np.testing.assert_array_equal(graph.edges, [[0, 1], [1, 2]])

    def test_empty_edge_list(self):
        graph = Graph(4, [])
        assert graph.num_edges == 0
        assert graph.max_degree == 0
        np.testing.assert_array_equal(graph.degrees, [0, 0, 0, 0])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="loop"):
            Graph(3, [(1, 1)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])
        with pytest.raises(GraphError):
            Graph(3, [(-1, 0)])

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_malformed_edges_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1, 2)])  # type: ignore[list-item]

    def test_name_default_and_custom(self):
        assert "n=3" in Graph(3, []).name
        assert Graph(3, [], name="custom").name == "custom"


class TestAccessors:
    @pytest.fixture
    def square(self):
        return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])

    def test_neighbors_sorted(self, square):
        np.testing.assert_array_equal(square.neighbors(0), [1, 3])
        np.testing.assert_array_equal(square.neighbors(2), [1, 3])

    def test_degree(self, square):
        assert square.degree(0) == 2
        assert square.max_degree == 2
        assert square.min_degree == 2

    def test_has_edge(self, square):
        assert square.has_edge(0, 1)
        assert square.has_edge(1, 0)
        assert not square.has_edge(0, 2)
        assert not square.has_edge(0, 0)

    def test_csr_consistency(self, square):
        for v in range(4):
            start, end = square.indptr[v], square.indptr[v + 1]
            assert end - start == square.degree(v)
            np.testing.assert_array_equal(
                square.indices[start:end], square.neighbors(v)
            )

    def test_edge_dij(self):
        # Star: center degree 3, leaves degree 1 -> every dij is 3.
        star = Graph(4, [(0, 1), (0, 2), (0, 3)])
        np.testing.assert_array_equal(star.edge_dij, [3, 3, 3])

    def test_adjacency_matrix_symmetric(self, square):
        matrix = square.adjacency_matrix()
        np.testing.assert_array_equal(matrix, matrix.T)
        assert matrix.sum() == 2 * square.num_edges
        assert np.all(np.diag(matrix) == 0)

    def test_vertex_range_checked(self, square):
        with pytest.raises(GraphError):
            square.neighbors(4)
        with pytest.raises(GraphError):
            square.degree(-1)

    def test_arrays_read_only(self, square):
        with pytest.raises(ValueError):
            square.degrees[0] = 99
        with pytest.raises(ValueError):
            square.edges[0, 0] = 99


class TestEqualityAndCopy:
    def test_equality(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        c = Graph(3, [(0, 2)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_hash_consistent(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(0, 1)])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_renamed_shares_structure(self):
        a = Graph(3, [(0, 1)])
        b = a.renamed("other")
        assert b.name == "other"
        assert b == a
        assert b.indices is a.indices

    def test_repr_contains_counts(self):
        text = repr(Graph(3, [(0, 1)]))
        assert "n=3" in text
        assert "m=1" in text
