"""Tests for the experiment registry, reporting, and CLI plumbing."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.experiments.reporting import render_result, result_to_markdown
from repro.utils.tables import Table


EXPECTED_IDS = {
    "table1-approx",
    "table1-exact",
    "table1-weighted",
    "thm11",
    "thm12",
    "thm13",
    "potential-drop",
    "decay",
    "spectral-bounds",
    "baselines",
    "weighted-variants",
    "equilibrium-quality",
    "robustness",
    "scenarios-churn-shock",
    "topology-failures",
    "workloads-traffic",
}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(available_experiments()) == EXPECTED_IDS

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("no-such-experiment")

    def test_get_returns_callable(self):
        runner = get_experiment("spectral-bounds")
        assert callable(runner)

    def test_double_registration_rejected(self):
        with pytest.raises(ExperimentError):

            @register_experiment("spectral-bounds")
            def duplicate(quick, seed):  # pragma: no cover
                raise AssertionError


class TestWorkersForwarding:
    """``workers`` must never be dropped silently (PR 4 satellite)."""

    def _temporary_experiment(self, runner):
        from repro.experiments import registry

        experiment_id = "_test-workers-forwarding"
        registry._REGISTRY[experiment_id] = runner
        return experiment_id

    def _cleanup(self, experiment_id):
        from repro.experiments import registry

        registry._REGISTRY.pop(experiment_id, None)

    def test_serial_fallback_warns(self):
        def runner(quick, seed):
            return ExperimentResult(experiment_id="w", title="w")

        experiment_id = self._temporary_experiment(runner)
        try:
            with pytest.warns(RuntimeWarning, match="does not support parallel"):
                run_experiment(experiment_id, workers=2)
        finally:
            self._cleanup(experiment_id)

    def test_workers_one_stays_silent(self):
        """workers=1 is the serial reference either way — no warning."""
        import warnings

        def runner(quick, seed):
            return ExperimentResult(experiment_id="w", title="w")

        experiment_id = self._temporary_experiment(runner)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                run_experiment(experiment_id, workers=1)
        finally:
            self._cleanup(experiment_id)

    def test_workers_forwarded_when_declared(self):
        seen = {}

        def runner(quick, seed, workers=None):
            seen["workers"] = workers
            return ExperimentResult(experiment_id="w", title="w")

        experiment_id = self._temporary_experiment(runner)
        try:
            run_experiment(experiment_id, workers=3)
        finally:
            self._cleanup(experiment_id)
        assert seen["workers"] == 3


class TestReporting:
    def make_result(self, passed=True):
        table = Table(headers=["a"], title="t")
        table.add_row([1])
        return ExperimentResult(
            experiment_id="demo",
            title="Demo experiment",
            tables=[table],
            notes=["a note"],
            passed=passed,
            data={"x": 1},
        )

    def test_render_result(self):
        text = render_result(self.make_result())
        assert "demo" in text
        assert "Demo experiment" in text
        assert "a note" in text
        assert "PASS" in text

    def test_render_fail_verdict(self):
        assert "FAIL" in render_result(self.make_result(passed=False))

    def test_markdown_section(self):
        markdown = result_to_markdown(self.make_result())
        assert markdown.startswith("### `demo`")
        assert "**Verdict:** PASS" in markdown
        assert "| a |" in markdown


class TestCli:
    def test_list_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPECTED_IDS:
            assert experiment_id in out

    def test_run_command_json_and_markdown(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        markdown_path = tmp_path / "report.md"
        json_path = tmp_path / "data.json"
        code = main(
            [
                "run",
                "spectral-bounds",
                "--markdown",
                str(markdown_path),
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        assert "spectral-bounds" in capsys.readouterr().out
        assert markdown_path.exists()
        assert "spectral-bounds" in markdown_path.read_text()
        assert json_path.exists()

    def test_csv_series_export(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        csv_dir = tmp_path / "series"
        code = main(["run", "robustness", "--csv", str(csv_dir)])
        assert code == 0
        capsys.readouterr()
        files = list(csv_dir.glob("*.csv"))
        assert files, "robustness should export its churn band series"
        header = files[0].read_text().splitlines()[0]
        assert "round" in header


class TestRunExperimentSmoke:
    """Fast experiments run end-to-end through the registry."""

    @pytest.mark.parametrize(
        "experiment_id", ["spectral-bounds", "potential-drop", "weighted-variants"]
    )
    def test_quick_run_passes(self, experiment_id):
        result = run_experiment(experiment_id, quick=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.passed, result.notes
        assert result.tables
