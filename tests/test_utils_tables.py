"""Tests for repro.utils.tables."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.utils.tables import Table, format_float, format_scientific


class TestFormatFloat:
    def test_integer_valued(self):
        assert format_float(3.0) == "3"

    def test_fractional(self):
        assert format_float(3.14159, 3) == "3.142"

    def test_nan_dash(self):
        assert format_float(math.nan) == "-"

    def test_none_dash(self):
        assert format_float(None) == "-"  # type: ignore[arg-type]

    def test_inf(self):
        assert format_float(math.inf) == "inf"
        assert format_float(-math.inf) == "-inf"


class TestFormatScientific:
    def test_basic(self):
        assert format_scientific(12345.0, 2) == "1.23e+04"

    def test_nan(self):
        assert format_scientific(math.nan) == "-"


class TestTable:
    def test_render_contains_headers_and_cells(self):
        table = Table(headers=["graph", "T"], title="demo")
        table.add_row(["ring", 12])
        text = table.render()
        assert "demo" in text
        assert "graph" in text
        assert "ring" in text
        assert "12" in text

    def test_row_width_mismatch(self):
        table = Table(headers=["a", "b"])
        with pytest.raises(ValidationError):
            table.add_row([1])

    def test_bool_rendering(self):
        table = Table(headers=["ok"])
        table.add_row([True])
        table.add_row([False])
        text = table.render()
        assert "yes" in text
        assert "no" in text

    def test_none_rendering(self):
        table = Table(headers=["value"])
        table.add_row([None])
        assert "-" in table.render()

    def test_markdown_shape(self):
        table = Table(headers=["a", "b"], title="t")
        table.add_row([1, 2])
        markdown = table.render_markdown()
        lines = markdown.splitlines()
        assert lines[0] == "**t**"
        assert "| a | b |" in markdown
        assert "| --- | --- |" in markdown
        assert "| 1 | 2 |" in markdown

    def test_column_alignment(self):
        table = Table(headers=["name"])
        table.add_row(["a-very-long-cell"])
        lines = table.render().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line same width

    def test_str_matches_render(self):
        table = Table(headers=["x"])
        table.add_row([1])
        assert str(table) == table.render()
