"""Tests for repro.graphs.io."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.generators import cycle_graph, grid_graph
from repro.graphs.io import read_edge_list, write_edge_list


class TestRoundtrip:
    def test_roundtrip_cycle(self, tmp_path):
        original = cycle_graph(7)
        path = tmp_path / "cycle.edges"
        write_edge_list(original, path)
        loaded = read_edge_list(path)
        assert loaded == original

    def test_roundtrip_grid(self, tmp_path):
        original = grid_graph(3)
        path = tmp_path / "grid.edges"
        write_edge_list(original, path)
        assert read_edge_list(path) == original

    def test_custom_name(self, tmp_path):
        path = tmp_path / "g.edges"
        write_edge_list(cycle_graph(4), path)
        assert read_edge_list(path, name="renamed").name == "renamed"


class TestParsing:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# comment\n\nn 3\n0 1\n\n# trailing\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_missing_header(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n")
        with pytest.raises(GraphError, match="missing"):
            read_edge_list(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("n 3\n0 1 2\n")
        with pytest.raises(GraphError, match="expected"):
            read_edge_list(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("n 3 4\n")
        with pytest.raises(GraphError):
            read_edge_list(path)
