"""Public API integrity: everything advertised in ``__all__`` exists."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_no_private_names_exported(self):
        """Single-underscore internals stay internal (dunders are fine)."""
        leaked = [
            name
            for name in repro.__all__
            if name.startswith("_") and not name.startswith("__")
        ]
        assert not leaked

    def test_all_sorted_within_sections(self):
        """__all__ has no duplicates."""
        assert len(repro.__all__) == len(set(repro.__all__))


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.utils",
        "repro.graphs",
        "repro.spectral",
        "repro.model",
        "repro.core",
        "repro.diffusion",
        "repro.theory",
        "repro.analysis",
        "repro.scenarios",
        "repro.workloads",
        "repro.experiments",
    ],
)
class TestSubpackageApi:
    def test_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20


class TestDocstringCoverage:
    def test_public_callables_documented(self):
        """Every top-level public callable/class carries a docstring."""
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"
