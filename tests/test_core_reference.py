"""Cross-validation: optimized sampler vs the literal per-task reference.

The production :class:`SelfishUniformProtocol` draws per-node multinomials
via a binomial chain rule; :class:`ReferenceUniformProtocol` implements
the pseudo-code one task at a time. Both must induce the same per-round
migration distribution. We compare first and second moments of per-edge
migrant counts over many sampled rounds, plus end-to-end convergence
behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import is_nash
from repro.core.flows import expected_flows
from repro.core.protocols import SelfishUniformProtocol
from repro.core.reference import ReferenceUniformProtocol
from repro.core.simulator import run_protocol
from repro.core.stopping import NashStop
from repro.graphs.generators import cycle_graph, path_graph, torus_graph
from repro.model.state import UniformState


def sample_moved(protocol, state, graph, rounds, seed):
    """Per-trial net task outflow of node 0 over one protocol round."""
    rng = np.random.default_rng(seed)
    samples = np.empty(rounds)
    for k in range(rounds):
        trial = state.copy()
        protocol.execute_round(trial, graph, rng)
        samples[k] = state.counts[0] - trial.counts[0]
    return samples


class TestDistributionEquivalence:
    @pytest.mark.parametrize(
        "counts,speeds",
        [
            ([40, 0], [1.0, 1.0]),
            ([60, 10], [1.0, 2.0]),
            ([100, 30, 0, 20], [1.0, 1.0, 2.0, 1.0]),
        ],
    )
    def test_first_two_moments_match(self, counts, speeds):
        n = len(counts)
        graph = path_graph(n) if n != 4 else cycle_graph(4)
        state = UniformState(np.asarray(counts), np.asarray(speeds))
        rounds = 3000
        fast = sample_moved(SelfishUniformProtocol(), state, graph, rounds, 1)
        slow = sample_moved(ReferenceUniformProtocol(), state, graph, rounds, 2)
        # Same mean (z-test) and comparable variance (F-ish ratio).
        se = np.sqrt(fast.var() / rounds + slow.var() / rounds)
        assert abs(fast.mean() - slow.mean()) < 4.5 * se + 1e-9
        if slow.var() > 0:
            assert 0.8 < fast.var() / slow.var() < 1.25

    def test_both_match_expected_flow(self):
        graph = path_graph(2)
        state = UniformState([48, 0], [1.0, 1.0])
        _, _, flows = expected_flows(state, graph)
        expected = flows[flows > 0][0]
        for protocol, seed in [
            (SelfishUniformProtocol(), 3),
            (ReferenceUniformProtocol(), 4),
        ]:
            samples = sample_moved(protocol, state, graph, 4000, seed)
            se = samples.std() / np.sqrt(samples.shape[0])
            assert abs(samples.mean() - expected) < 4.5 * se + 1e-9


class TestReferenceBehaviour:
    def test_converges_to_nash(self):
        graph = torus_graph(3)
        state = UniformState(np.array([90] + [0] * 8), np.ones(9))
        result = run_protocol(
            graph,
            ReferenceUniformProtocol(),
            state,
            stopping=NashStop(),
            max_rounds=50_000,
            seed=5,
        )
        assert result.converged
        assert is_nash(state, graph)

    def test_mass_conserved(self, rng):
        graph = cycle_graph(6)
        state = UniformState(np.array([60, 0, 0, 0, 0, 0]), np.ones(6))
        protocol = ReferenceUniformProtocol()
        for _ in range(50):
            protocol.execute_round(state, graph, rng)
            assert state.num_tasks == 60
            assert np.all(state.counts >= 0)

    def test_nash_absorbing(self, rng):
        graph = cycle_graph(6)
        state = UniformState(np.full(6, 10), np.ones(6))
        protocol = ReferenceUniformProtocol()
        for _ in range(20):
            assert protocol.execute_round(state, graph, rng).tasks_moved == 0

    def test_requires_uniform_state(self, ring8, rng):
        from repro.model.state import WeightedState

        state = WeightedState([0], [0.5], np.ones(8))
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            ReferenceUniformProtocol().execute_round(state, ring8, rng)

    def test_saturation_flag(self, rng):
        from repro.graphs.generators import complete_graph

        graph = complete_graph(4)
        state = UniformState([1000, 0, 0, 0], np.ones(4))
        protocol = ReferenceUniformProtocol(alpha=0.01)
        assert protocol.execute_round(state, graph, rng).saturated
