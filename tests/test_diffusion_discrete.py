"""Tests for repro.diffusion.discrete."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.flows import default_alpha
from repro.diffusion.discrete import RandomizedRoundingProtocol, RoundedFlowProtocol
from repro.errors import ProtocolError
from repro.graphs.generators import cycle_graph, path_graph, torus_graph
from repro.model.state import UniformState, WeightedState


class TestRoundedFlowProtocol:
    def test_mass_conserved(self, torus9, rng):
        state = UniformState(np.array([900] + [0] * 8), np.ones(9))
        protocol = RoundedFlowProtocol()
        for _ in range(100):
            protocol.execute_round(state, torus9, rng)
            assert state.num_tasks == 900
            assert np.all(state.counts >= 0)

    def test_deterministic(self, torus9):
        a = UniformState(np.array([900] + [0] * 8), np.ones(9))
        b = UniformState(np.array([900] + [0] * 8), np.ones(9))
        protocol = RoundedFlowProtocol()
        for _ in range(10):
            protocol.execute_round(a, torus9, np.random.default_rng(1))
            protocol.execute_round(b, torus9, np.random.default_rng(99))
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_stalls_at_bounded_discrepancy(self, rng):
        """Once flows floor to zero, nothing moves; gap stays bounded."""
        graph = cycle_graph(8)
        state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
        protocol = RoundedFlowProtocol()
        for _ in range(2000):
            if protocol.execute_round(state, graph, rng).tasks_moved == 0:
                break
        # Per-edge stall gain: alpha * d_ij * (1/s_i + 1/s_j) = 4*2*2 = 16.
        gaps = np.abs(np.diff(np.concatenate([state.counts, state.counts[:1]])))
        assert gaps.max() <= 16.0

    def test_requires_uniform_state(self, ring8, rng):
        protocol = RoundedFlowProtocol()
        state = WeightedState([0], [0.5], np.ones(8))
        with pytest.raises(ProtocolError):
            protocol.execute_round(state, ring8, rng)

    def test_moves_toward_balance(self, rng):
        graph = path_graph(2)
        state = UniformState([100, 0], [1.0, 1.0])
        protocol = RoundedFlowProtocol()
        protocol.execute_round(state, graph, rng)
        # flow = 100 / 8 = 12.5 -> floor 12.
        np.testing.assert_array_equal(state.counts, [88, 12])


class TestRandomizedRoundingProtocol:
    def test_mass_conserved(self, torus9, rng):
        state = UniformState(np.array([900] + [0] * 8), np.ones(9))
        protocol = RandomizedRoundingProtocol()
        for _ in range(100):
            protocol.execute_round(state, torus9, rng)
            assert state.num_tasks == 900
            assert np.all(state.counts >= 0)

    def test_expected_flow_preserved(self, rng):
        """Randomized rounding is unbiased: mean moved ~ continuous flow."""
        graph = path_graph(2)
        state = UniformState([10, 0], [1.0, 1.0])
        # flow = 10 / 8 = 1.25.
        protocol = RandomizedRoundingProtocol()
        moved = []
        for _ in range(4000):
            trial = state.copy()
            protocol.execute_round(trial, graph, rng)
            moved.append(10 - trial.counts[0])
        mean = float(np.mean(moved))
        standard_error = float(np.std(moved)) / np.sqrt(len(moved))
        assert abs(mean - 1.25) < 4 * standard_error + 1e-9

    def test_gets_closer_than_deterministic(self, rng):
        """Randomized rounding keeps balancing where floor stalls."""
        graph = cycle_graph(8)

        def final_psi(protocol_class):
            state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
            protocol = protocol_class()
            local = np.random.default_rng(4)
            for _ in range(3000):
                protocol.execute_round(state, graph, local)
            deviation = state.deviation
            return float(np.sum(deviation * deviation))

        assert final_psi(RandomizedRoundingProtocol) < final_psi(RoundedFlowProtocol)

    def test_never_overdraws(self, rng):
        """Outflow capping keeps counts non-negative even when flows are big."""
        graph = torus_graph(3)
        state = UniformState(np.array([5] + [0] * 8), np.ones(9))
        protocol = RandomizedRoundingProtocol(alpha=0.05)  # huge flows
        for _ in range(50):
            protocol.execute_round(state, graph, rng)
            assert np.all(state.counts >= 0)
            assert state.num_tasks == 5

    def test_requires_uniform_state(self, ring8, rng):
        state = WeightedState([0], [0.5], np.ones(8))
        with pytest.raises(ProtocolError):
            RandomizedRoundingProtocol().execute_round(state, ring8, rng)
