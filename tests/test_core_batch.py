"""Tests for the batched ensemble engine (repro.core.batch), uniform path.

Covers the equivalence battery through the shared ``tests/equivalence.py``
harness (the weighted engine runs the same battery in
``test_core_batch_weighted.py``):

(a) per-replica determinism under fixed seeds (including prefix
    stability: the same replica is bit-identical regardless of how many
    other replicas run alongside it);
(b) KS-test agreement of first-hit distributions between
    ``BatchSimulator`` and the scalar ``Simulator`` on a torus cell;
(c) conservation of tasks across every batched round.
"""

from __future__ import annotations

import numpy as np
import pytest

from equivalence import (
    assert_batch_conserves,
    assert_engines_agree,
    assert_prefix_stability,
    assert_same_seed_determinism,
)
from repro.analysis.convergence import measure_convergence_rounds
from repro.core.batch import BatchSimulator, run_protocol_batch
from repro.core.protocols import SelfishUniformProtocol, SelfishWeightedProtocol
from repro.core.reference import ReferenceUniformProtocol
from repro.core.stopping import (
    AnyStop,
    EpsilonNashStop,
    NashStop,
    NeverStop,
    PotentialThresholdStop,
    StoppingRule,
)
from repro.errors import ProtocolError, SimulationError, ValidationError
from repro.graphs.generators import torus_graph
from repro.model.batch import BatchUniformState
from repro.model.placement import random_placement
from repro.model.state import UniformState
from repro.utils.rng import spawn_rngs


@pytest.fixture
def torus9():
    return torus_graph(3)


def uniform_factory(n, m):
    def factory(rng):
        return UniformState(random_placement(n, m, rng), np.ones(n))

    return factory


def make_ensemble(graph, replicas, m, seed):
    """Replica stack + its generators, factory-built like the pipeline."""
    rngs = spawn_rngs(seed, replicas)
    factory = uniform_factory(graph.num_vertices, m)
    states = [factory(rng) for rng in rngs]
    return BatchUniformState.from_states(states), rngs


class TestDeterminism:
    def test_same_seed_same_results(self, torus9):
        def run():
            batch, rngs = make_ensemble(torus9, 8, 72, seed=11)
            simulator = BatchSimulator(torus9, SelfishUniformProtocol())
            result = simulator.run(
                batch, stopping=NashStop(), max_rounds=20_000, rngs=rngs
            )
            return result.stop_rounds.copy(), batch.counts.copy()

        assert_same_seed_determinism(run)

    def test_replicas_reproducible_in_isolation(self, torus9):
        """Replica r's trajectory must not depend on the ensemble size.

        Child streams are spawned per replica, so running the first 3
        replicas alone must reproduce their results from an 8-replica
        run bit-for-bit.
        """
        protocol = SelfishUniformProtocol()

        def run(replicas):
            batch, rngs = make_ensemble(torus9, replicas, 72, seed=5)
            simulator = BatchSimulator(torus9, protocol)
            result = simulator.run(
                batch, stopping=NashStop(), max_rounds=20_000, rngs=rngs
            )
            return result.stop_rounds, batch.counts

        assert_prefix_stability(run, 3, 8)

    def test_simulator_spawns_deterministic_streams(self, torus9):
        batch_a, _ = make_ensemble(torus9, 4, 72, seed=9)
        batch_b = batch_a.copy()
        result_a = run_protocol_batch(
            torus9, SelfishUniformProtocol(), batch_a, NashStop(),
            max_rounds=20_000, seed=123,
        )
        result_b = run_protocol_batch(
            torus9, SelfishUniformProtocol(), batch_b, NashStop(),
            max_rounds=20_000, seed=123,
        )
        np.testing.assert_array_equal(result_a.stop_rounds, result_b.stop_rounds)


class TestConservation:
    def test_tasks_conserved_every_round(self, torus9):
        """Totals exact per round; a retired replica stays untouched."""
        batch, rngs = make_ensemble(torus9, 6, 90, seed=2)
        assert_batch_conserves(
            batch,
            SelfishUniformProtocol(),
            torus9,
            rngs,
            rounds=60,
            retired=[4],
        )

    def test_moved_counts_reported(self, torus9):
        """From an extreme start the first round must move tasks."""
        counts = np.zeros((3, torus9.num_vertices), dtype=np.int64)
        counts[:, 0] = 200
        batch = BatchUniformState(counts, np.ones(torus9.num_vertices))
        rngs = spawn_rngs(0, 3)
        summary = SelfishUniformProtocol().execute_round_batch(
            batch, torus9, rngs, None
        )
        assert np.all(summary.tasks_moved > 0)
        np.testing.assert_array_equal(
            summary.weight_moved, summary.tasks_moved.astype(float)
        )


@pytest.mark.slow
class TestDistributionalEquivalence:
    def test_ks_agreement_with_scalar_engine(self, torus9):
        """Same seed set -> first-hit distributions agree (KS test).

        The batched multinomial kernel and the scalar binomial-chain
        kernel sample the identical per-round migration law, so the
        first-hitting-round samples are draws from one distribution.
        """
        assert_engines_agree(
            graph=torus9,
            protocol=SelfishUniformProtocol(),
            state_factory=uniform_factory(torus9.num_vertices, 72),
            stopping=NashStop(),
            repetitions=80,
            max_rounds=50_000,
            seed=31,
        )

    def test_psi_threshold_agreement(self, torus9):
        assert_engines_agree(
            graph=torus9,
            protocol=SelfishUniformProtocol(),
            state_factory=uniform_factory(torus9.num_vertices, 120),
            stopping=PotentialThresholdStop(60.0, "psi0"),
            repetitions=60,
            max_rounds=20_000,
            seed=77,
        )


class TestBatchedStoppingRules:
    """satisfied_batch must agree with scalar satisfied per replica."""

    @pytest.mark.parametrize(
        "rule",
        [
            NashStop(),
            EpsilonNashStop(0.2),
            PotentialThresholdStop(40.0, "psi0"),
            PotentialThresholdStop(40.0, "psi1"),
            NeverStop(),
            AnyStop([NashStop(), PotentialThresholdStop(40.0, "psi0")]),
        ],
        ids=["nash", "eps-nash", "psi0", "psi1", "never", "any"],
    )
    def test_matches_scalar(self, torus9, rule):
        rng = np.random.default_rng(4)
        counts = rng.integers(0, 12, size=(10, torus9.num_vertices))
        counts[0] = counts[0].sum() // torus9.num_vertices  # near-balanced row
        batch = BatchUniformState(counts, np.ones(torus9.num_vertices))
        rows = np.arange(batch.num_replicas)
        batched = rule.satisfied_batch(batch, torus9, rows)
        scalar = np.array(
            [rule.satisfied(batch.replica(r), torus9) for r in rows]
        )
        np.testing.assert_array_equal(batched, scalar)

    def test_generic_fallback_used_by_custom_rules(self, torus9):
        class BalancedNodeZero(StoppingRule):
            def satisfied(self, state, graph):
                return int(state.counts[0]) <= 2

        rng = np.random.default_rng(8)
        counts = rng.integers(0, 6, size=(7, torus9.num_vertices))
        batch = BatchUniformState(counts, np.ones(torus9.num_vertices))
        rows = np.arange(7)
        verdicts = BalancedNodeZero().satisfied_batch(batch, torus9, rows)
        np.testing.assert_array_equal(verdicts, counts[:, 0] <= 2)


class TestEngineRouting:
    def test_auto_uses_batch_for_uniform(self, torus9):
        measurement = measure_convergence_rounds(
            graph=torus9,
            protocol=SelfishUniformProtocol(),
            state_factory=uniform_factory(torus9.num_vertices, 36),
            stopping=NashStop(),
            repetitions=5,
            max_rounds=20_000,
            seed=1,
        )
        assert measurement.engine == "batch"
        assert measurement.all_converged

    def test_auto_stays_scalar_for_ablation_alpha(self, torus9):
        """Clipped (alpha < 4 s_max) regimes keep the scalar reference:

        there the two uniform kernels resolve saturation differently, so
        auto must not silently switch laws. (The weighted kernels clip
        identically; their routing is covered in
        test_core_batch_weighted.py.)"""
        measurement = measure_convergence_rounds(
            graph=torus9,
            protocol=SelfishUniformProtocol(alpha=0.5),
            state_factory=uniform_factory(torus9.num_vertices, 36),
            stopping=NashStop(),
            repetitions=3,
            max_rounds=5_000,
            seed=2,
        )
        assert measurement.engine == "scalar"

    def test_forced_batch_rejects_unstackable_states(self, torus9):
        """Replicas with per-repetition speed vectors cannot stack."""
        n = torus9.num_vertices

        def varying_speeds_factory(rng):
            speeds = rng.uniform(1.0, 2.0, size=n)
            return UniformState(random_placement(n, 36, rng), speeds)

        with pytest.raises(ValidationError):
            measure_convergence_rounds(
                graph=torus9,
                protocol=SelfishUniformProtocol(),
                state_factory=varying_speeds_factory,
                stopping=NashStop(),
                repetitions=2,
                max_rounds=100,
                seed=6,
                engine="batch",
            )

    def test_forced_batch_rejects_batch_incapable_protocol(self, torus9):
        with pytest.raises(ValidationError):
            measure_convergence_rounds(
                graph=torus9,
                protocol=ReferenceUniformProtocol(),
                state_factory=uniform_factory(torus9.num_vertices, 36),
                stopping=NashStop(),
                repetitions=2,
                max_rounds=100,
                seed=6,
                engine="batch",
            )

    def test_unknown_engine_rejected(self, torus9):
        with pytest.raises(ValidationError):
            measure_convergence_rounds(
                graph=torus9,
                protocol=SelfishUniformProtocol(),
                state_factory=uniform_factory(torus9.num_vertices, 9),
                stopping=NashStop(),
                repetitions=1,
                max_rounds=10,
                engine="warp",
            )


class TestBatchSimulatorContract:
    def test_rejects_batch_incapable_protocol(self, torus9):
        with pytest.raises(SimulationError):
            BatchSimulator(torus9, ReferenceUniformProtocol())

    def test_weighted_protocol_now_batch_capable(self, torus9):
        """PR 2: the weighted protocols advertise a batched kernel."""
        simulator = BatchSimulator(torus9, SelfishWeightedProtocol())
        assert simulator.protocol.supports_batch

    def test_rejects_node_mismatch(self, torus9):
        batch = BatchUniformState(np.ones((2, 4), dtype=np.int64), np.ones(4))
        simulator = BatchSimulator(torus9, SelfishUniformProtocol())
        with pytest.raises(SimulationError):
            simulator.run(batch)

    def test_rejects_wrong_rng_count(self, torus9):
        batch, _ = make_ensemble(torus9, 4, 36, seed=0)
        simulator = BatchSimulator(torus9, SelfishUniformProtocol())
        with pytest.raises(SimulationError):
            simulator.run(batch, rngs=spawn_rngs(0, 3))

    def test_kernel_rejects_wrong_rng_count(self, torus9):
        batch, _ = make_ensemble(torus9, 4, 36, seed=0)
        with pytest.raises(ProtocolError):
            SelfishUniformProtocol().execute_round_batch(
                batch, torus9, spawn_rngs(0, 3), None
            )

    def test_fixed_horizon_runs_all_rounds(self, torus9):
        batch, rngs = make_ensemble(torus9, 3, 36, seed=0)
        simulator = BatchSimulator(torus9, SelfishUniformProtocol())
        result = simulator.run(batch, stopping=None, max_rounds=17, rngs=rngs)
        assert result.rounds_executed == 17
        assert not np.any(result.converged)
        assert result.stop_reason == "fixed horizon completed"

    def test_already_converged_stops_at_round_zero(self, torus9):
        n = torus9.num_vertices
        batch = BatchUniformState(
            np.full((3, n), 4, dtype=np.int64), np.ones(n)
        )
        result = run_protocol_batch(
            torus9, SelfishUniformProtocol(), batch, NashStop(), max_rounds=100
        )
        assert result.all_converged
        np.testing.assert_array_equal(result.stop_rounds, 0)
        assert result.rounds_executed == 0

    def test_budget_exhaustion_reported(self, torus9):
        counts = np.zeros((2, torus9.num_vertices), dtype=np.int64)
        counts[:, 0] = 500
        batch = BatchUniformState(counts, np.ones(torus9.num_vertices))
        result = run_protocol_batch(
            torus9, SelfishUniformProtocol(), batch, NashStop(),
            max_rounds=1, seed=3,
        )
        assert result.num_converged == 0
        assert "budget exhausted" in result.stop_reason

    def test_check_every_coarsens_stop_round(self, torus9):
        batch_fine, rngs_fine = make_ensemble(torus9, 4, 72, seed=21)
        simulator = BatchSimulator(torus9, SelfishUniformProtocol())
        fine = simulator.run(
            batch_fine, stopping=NashStop(), max_rounds=20_000, rngs=rngs_fine
        )
        batch_coarse, rngs_coarse = make_ensemble(torus9, 4, 72, seed=21)
        coarse = simulator.run(
            batch_coarse,
            stopping=NashStop(),
            max_rounds=20_000,
            check_every=5,
            rngs=rngs_coarse,
        )
        assert np.all(coarse.stop_rounds % 5 == 0)
        assert np.all(coarse.stop_rounds >= fine.stop_rounds)
