"""Tests for repro.analysis.convergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.convergence import measure_convergence_rounds
from repro.core.protocols import SelfishUniformProtocol, SelfishWeightedProtocol
from repro.core.stopping import NashStop, PotentialThresholdStop
from repro.errors import ValidationError
from repro.graphs.generators import cycle_graph
from repro.model.state import UniformState, WeightedState


def state_factory(rng):
    counts = np.zeros(8, dtype=np.int64)
    counts[0] = 80
    return UniformState(counts, np.ones(8))


def weighted_state_factory(rng):
    locations = np.zeros(40, dtype=np.int64)
    weights = np.linspace(0.2, 1.0, 40)
    return WeightedState(locations, weights, np.ones(8))


class TestMeasureConvergenceRounds:
    def test_all_converge(self, ring8):
        measurement = measure_convergence_rounds(
            graph=ring8,
            protocol=SelfishUniformProtocol(),
            state_factory=state_factory,
            stopping=NashStop(),
            repetitions=4,
            max_rounds=50_000,
            seed=3,
        )
        assert measurement.all_converged
        assert measurement.num_converged == 4
        assert measurement.rounds.shape == (4,)
        assert measurement.repetition_rounds.shape == (4,)
        assert not np.isnan(measurement.repetition_rounds).any()
        np.testing.assert_array_equal(
            measurement.rounds, measurement.repetition_rounds.astype(np.int64)
        )
        assert measurement.summary is not None
        assert measurement.median_rounds > 0
        assert measurement.mean_rounds > 0

    def test_budget_too_small(self, ring8):
        measurement = measure_convergence_rounds(
            graph=ring8,
            protocol=SelfishUniformProtocol(),
            state_factory=state_factory,
            stopping=NashStop(),
            repetitions=3,
            max_rounds=1,
            seed=3,
        )
        assert measurement.num_converged == 0
        assert not measurement.all_converged
        assert measurement.repetition_rounds.shape == (3,)
        assert np.isnan(measurement.repetition_rounds).all()
        assert np.isnan(measurement.median_rounds)
        assert np.isnan(measurement.mean_rounds)

    def test_repetition_rounds_align_across_engines(self, ring8):
        """Per-repetition attribution matches between scalar and batch.

        The weighted kernels are pathwise identical across engines, so
        with the same seed both must report the same first-hitting round
        — and the same NaN slots — repetition by repetition, even when a
        tight budget leaves some repetitions unconverged.
        """

        def run(engine, max_rounds):
            return measure_convergence_rounds(
                graph=ring8,
                protocol=SelfishWeightedProtocol(),
                state_factory=weighted_state_factory,
                stopping=NashStop(),
                repetitions=6,
                max_rounds=max_rounds,
                seed=11,
                engine=engine,
            )

        generous = run("batch", 50_000)
        assert generous.all_converged
        # A budget strictly inside the observed range leaves a genuine
        # converged/unconverged mix to attribute.
        budget = int(np.median(generous.repetition_rounds))
        scalar = run("scalar", budget)
        batch = run("batch", budget)
        assert 0 < scalar.num_converged < scalar.num_repetitions
        np.testing.assert_array_equal(
            scalar.repetition_rounds, batch.repetition_rounds
        )
        converged = ~np.isnan(batch.repetition_rounds)
        np.testing.assert_array_equal(
            np.isnan(generous.repetition_rounds), np.zeros(6, dtype=bool)
        )
        np.testing.assert_array_equal(
            batch.repetition_rounds[converged],
            generous.repetition_rounds[converged],
        )

    def test_reproducible(self, ring8):
        def run():
            return measure_convergence_rounds(
                graph=ring8,
                protocol=SelfishUniformProtocol(),
                state_factory=state_factory,
                stopping=PotentialThresholdStop(500.0, "psi0"),
                repetitions=3,
                max_rounds=20_000,
                seed=8,
            ).rounds

        np.testing.assert_array_equal(run(), run())

    def test_state_factory_uses_rng(self, ring8):
        """Random starts differ across repetitions (factory receives rng)."""
        seen = []

        def factory(rng):
            counts = np.bincount(rng.integers(0, 8, size=80), minlength=8)
            seen.append(counts.copy())
            return UniformState(counts, np.ones(8))

        measure_convergence_rounds(
            graph=ring8,
            protocol=SelfishUniformProtocol(),
            state_factory=factory,
            stopping=NashStop(),
            repetitions=3,
            max_rounds=10_000,
            seed=1,
        )
        assert len(seen) == 3
        assert not all(np.array_equal(seen[0], other) for other in seen[1:])

    def test_repetitions_validated(self, ring8):
        with pytest.raises(ValidationError):
            measure_convergence_rounds(
                graph=ring8,
                protocol=SelfishUniformProtocol(),
                state_factory=state_factory,
                stopping=NashStop(),
                repetitions=0,
                max_rounds=10,
            )
