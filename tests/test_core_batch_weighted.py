"""Tests for the batched weighted-protocol engine (PR 2 tentpole).

The weighted kernels have a contract *stronger* than the uniform
engine's law-level equivalence: per replica they consume randomness in
exactly the scalar kernel's order (one uniform per task for the
neighbour choice, one per task-with-neighbour for the migration
Bernoulli), so batch and scalar runs from identical generator states are
pathwise bit-identical. This file asserts

(a) that pathwise identity, per round and end-to-end, for all three
    weighted protocol variants (flow rule, pseudo-code rule, per-task
    threshold baseline);
(b) the shared equivalence battery (KS agreement at 200 repetitions on
    two graph families, conservation, spawned-stream determinism) via
    ``tests/equivalence.py``;
(c) batched stopping-rule agreement and ``engine="auto"`` routing for
    weighted states.
"""

from __future__ import annotations

import numpy as np
import pytest

from equivalence import (
    assert_batch_conserves,
    assert_engines_agree,
    assert_prefix_stability,
    assert_same_seed_determinism,
    run_both_engines,
)
from repro.analysis.convergence import measure_convergence_rounds
from repro.core.batch import BatchSimulator, run_protocol_batch
from repro.core.protocols import (
    PerTaskThresholdProtocol,
    SelfishWeightedProtocol,
)
from repro.core.simulator import Simulator
from repro.core.stopping import (
    AnyStop,
    EpsilonNashStop,
    NashStop,
    NeverStop,
    PotentialThresholdStop,
    WeightedExactNashStop,
)
from repro.errors import ProtocolError
from repro.graphs.generators import cycle_graph, torus_graph
from repro.model.batch import BatchUniformState, BatchWeightedState
from repro.model.placement import place_weighted_random
from repro.model.state import WeightedState
from repro.utils.rng import make_rng, spawn_rngs

ALL_WEIGHTED_PROTOCOLS = [
    pytest.param(lambda: SelfishWeightedProtocol(rule="flow"), id="flow"),
    pytest.param(
        lambda: SelfishWeightedProtocol(rule="pseudocode"), id="pseudocode"
    ),
    pytest.param(lambda: PerTaskThresholdProtocol(), id="per-task"),
]


@pytest.fixture
def torus9():
    return torus_graph(3)


@pytest.fixture
def ring8():
    return cycle_graph(8)


def weighted_factory(n, m, speeds=None, low=0.2, high=1.0):
    speeds_array = np.ones(n) if speeds is None else np.asarray(speeds, float)

    def factory(rng):
        weights = rng.uniform(low, high, size=m)
        locations = place_weighted_random(m, n, rng)
        return WeightedState(locations, weights, speeds_array)

    return factory


def make_ensemble(graph, replicas, m, seed, speeds=None):
    """Replica stack + its generators, factory-built like the pipeline.

    Task counts vary per replica (m, m-1, m-2, ...) so the padded layout
    and the active-task mask are genuinely exercised.
    """
    rngs = spawn_rngs(seed, replicas)
    n = graph.num_vertices
    states = []
    for index, rng in enumerate(rngs):
        tasks = max(1, m - index)
        states.append(weighted_factory(n, tasks, speeds=speeds)(rng))
    return BatchWeightedState.from_states(states), rngs


class TestPathwiseIdentity:
    """Batch rounds are bit-identical to scalar rounds, same streams."""

    @pytest.mark.parametrize("make_protocol", ALL_WEIGHTED_PROTOCOLS)
    def test_rounds_bitwise_equal(self, torus9, make_protocol):
        mixed_speeds = np.array(
            [1.0, 2.0, 1.0, 3.0, 1.0, 2.0, 1.0, 1.0, 2.0]
        )
        batch, _ = make_ensemble(torus9, 4, 30, seed=3, speeds=mixed_speeds)
        scalars = [batch.replica(r) for r in range(4)]
        seeds = [101, 202, 303, 404]
        batch_rngs = [make_rng(s) for s in seeds]
        scalar_rngs = [make_rng(s) for s in seeds]
        batch_protocol = make_protocol()
        scalar_protocol = make_protocol()
        for _ in range(25):
            summary = batch_protocol.execute_round_batch(
                batch, torus9, batch_rngs, None
            )
            for r, (state, rng) in enumerate(zip(scalars, scalar_rngs)):
                scalar_summary = scalar_protocol.execute_round(
                    state, torus9, rng
                )
                assert scalar_summary.tasks_moved == summary.tasks_moved[r]
                assert scalar_summary.weight_moved == pytest.approx(
                    summary.weight_moved[r], abs=1e-12
                )
                assert scalar_summary.saturated == bool(summary.saturated[r])
        for r, state in enumerate(scalars):
            replica = batch.replica(r)
            np.testing.assert_array_equal(replica.task_nodes, state.task_nodes)
            np.testing.assert_array_equal(
                batch.node_weights[r], state.node_weights
            )

    def test_end_to_end_stop_rounds_identical(self, ring8):
        """Same seed -> the two engines return the *same* stop rounds.

        (KS agreement below is the distribution-level check; for the
        weighted kernels the pathwise contract makes the engines agree
        sample-by-sample, not just in law.)
        """
        common = dict(
            graph=ring8,
            protocol=SelfishWeightedProtocol(),
            state_factory=weighted_factory(8, 24),
            stopping=NashStop(),
            repetitions=40,
            max_rounds=20_000,
            seed=17,
        )
        batch, scalar = run_both_engines(**common)
        assert batch.all_converged and scalar.all_converged
        np.testing.assert_array_equal(batch.rounds, scalar.rounds)


@pytest.mark.slow
class TestDistributionalEquivalence:
    """Acceptance: KS p > 0.01 at 200 repetitions on two graph families."""

    def test_ks_agreement_ring(self, ring8):
        assert_engines_agree(
            graph=ring8,
            protocol=SelfishWeightedProtocol(),
            state_factory=weighted_factory(8, 24),
            stopping=NashStop(),
            repetitions=200,
            max_rounds=50_000,
            seed=41,
        )

    def test_ks_agreement_torus(self, torus9):
        assert_engines_agree(
            graph=torus9,
            protocol=SelfishWeightedProtocol(),
            state_factory=weighted_factory(9, 27),
            stopping=NashStop(),
            repetitions=200,
            max_rounds=50_000,
            seed=43,
        )


class TestDeterminism:
    def test_same_seed_same_results(self, torus9):
        def run():
            batch, rngs = make_ensemble(torus9, 6, 24, seed=11)
            simulator = BatchSimulator(torus9, SelfishWeightedProtocol())
            result = simulator.run(
                batch, stopping=NashStop(), max_rounds=20_000, rngs=rngs
            )
            return result.stop_rounds.copy(), batch.task_nodes.copy()

        assert_same_seed_determinism(run)

    def test_replicas_reproducible_in_isolation(self, torus9):
        protocol = SelfishWeightedProtocol()

        def run(replicas):
            batch, rngs = make_ensemble(torus9, replicas, 24, seed=5)
            simulator = BatchSimulator(torus9, protocol)
            result = simulator.run(
                batch, stopping=NashStop(), max_rounds=20_000, rngs=rngs
            )
            # Pad task axes to a common width for prefix comparison.
            nodes = np.full((replicas, 24), -1, dtype=np.int64)
            nodes[:, : batch.max_tasks] = batch.task_nodes
            return result.stop_rounds, nodes

        assert_prefix_stability(run, 3, 8)


class TestConservation:
    @pytest.mark.parametrize("make_protocol", ALL_WEIGHTED_PROTOCOLS)
    def test_weight_conserved_every_round(self, torus9, make_protocol):
        batch, rngs = make_ensemble(torus9, 6, 30, seed=2)
        assert_batch_conserves(
            batch, make_protocol(), torus9, rngs, rounds=40, retired=[1, 4]
        )

    def test_moved_weight_reported(self, torus9):
        """From an extreme start the first round must move weight."""
        n = torus9.num_vertices
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.5, 1.0, size=(3, 60))
        nodes = np.zeros((3, 60), dtype=np.int64)
        batch = BatchWeightedState(nodes, weights, np.ones(n))
        summary = SelfishWeightedProtocol().execute_round_batch(
            batch, torus9, spawn_rngs(0, 3), None
        )
        assert np.all(summary.tasks_moved > 0)
        assert np.all(summary.weight_moved > 0)
        # Weight per move lies in the drawn weight range.
        assert np.all(
            summary.weight_moved <= summary.tasks_moved.astype(float)
        )


class TestBatchedStoppingRules:
    """satisfied_batch must agree with scalar satisfied per replica."""

    @pytest.mark.parametrize(
        "rule",
        [
            NashStop(),
            EpsilonNashStop(0.2),
            WeightedExactNashStop(),
            PotentialThresholdStop(40.0, "psi0"),
            PotentialThresholdStop(40.0, "psi1"),
            NeverStop(),
            AnyStop([NashStop(), WeightedExactNashStop()]),
        ],
        ids=["nash", "eps-nash", "weighted-exact", "psi0", "psi1", "never", "any"],
    )
    def test_matches_scalar(self, torus9, rule):
        # A mix of spread-out (likely equilibrium) and concentrated rows.
        batch, _ = make_ensemble(torus9, 8, 20, seed=4)
        nearly_balanced = batch.replica(0)
        rows = np.arange(batch.num_replicas)
        batched = rule.satisfied_batch(batch, torus9, rows)
        scalar = np.array(
            [rule.satisfied(batch.replica(r), torus9) for r in rows]
        )
        np.testing.assert_array_equal(batched, scalar)
        assert nearly_balanced.num_tasks == 20  # fixture sanity

    def test_weighted_exact_nash_empty_nodes_vacuous(self, torus9):
        """Nodes without tasks impose no per-task condition."""
        n = torus9.num_vertices
        nodes = np.full((2, 4), 0, dtype=np.int64)
        weights = np.full((2, 4), 0.5)
        batch = BatchWeightedState(nodes, weights, np.ones(n))
        rule = WeightedExactNashStop()
        rows = np.arange(2)
        batched = rule.satisfied_batch(batch, torus9, rows)
        scalar = np.array(
            [rule.satisfied(batch.replica(r), torus9) for r in rows]
        )
        np.testing.assert_array_equal(batched, scalar)


class TestEngineRouting:
    def test_auto_uses_batch_for_weighted(self, torus9):
        measurement = measure_convergence_rounds(
            graph=torus9,
            protocol=SelfishWeightedProtocol(),
            state_factory=weighted_factory(9, 27),
            stopping=NashStop(),
            repetitions=5,
            max_rounds=20_000,
            seed=6,
        )
        assert measurement.engine == "batch"
        assert measurement.all_converged

    def test_auto_batches_weighted_even_with_ablation_alpha(self, torus9):
        """Weighted kernels clip per task exactly like the scalar kernel,
        so ablation alphas do not force the scalar fallback."""
        measurement = measure_convergence_rounds(
            graph=torus9,
            protocol=SelfishWeightedProtocol(alpha=0.5),
            state_factory=weighted_factory(9, 27),
            stopping=NashStop(),
            repetitions=3,
            max_rounds=20_000,
            seed=7,
        )
        assert measurement.engine == "batch"

    def test_ablation_alpha_engines_still_identical(self, ring8):
        """Pathwise identity holds in the clipped regime too."""
        common = dict(
            graph=ring8,
            protocol=SelfishWeightedProtocol(alpha=1.0),
            state_factory=weighted_factory(8, 24),
            stopping=NashStop(),
            repetitions=20,
            max_rounds=20_000,
            seed=23,
        )
        batch, scalar = run_both_engines(**common)
        np.testing.assert_array_equal(batch.rounds, scalar.rounds)

    @pytest.mark.parametrize("make_protocol", ALL_WEIGHTED_PROTOCOLS)
    def test_batch_state_class_is_weighted(self, make_protocol):
        assert make_protocol().batch_state_class() is BatchWeightedState


class TestKernelContract:
    def test_rejects_uniform_stack(self, torus9):
        n = torus9.num_vertices
        uniform = BatchUniformState(
            np.full((2, n), 3, dtype=np.int64), np.ones(n)
        )
        with pytest.raises(ProtocolError):
            SelfishWeightedProtocol().execute_round_batch(
                uniform, torus9, spawn_rngs(0, 2), None
            )

    def test_rejects_wrong_rng_count(self, torus9):
        batch, _ = make_ensemble(torus9, 4, 12, seed=0)
        with pytest.raises(ProtocolError):
            SelfishWeightedProtocol().execute_round_batch(
                batch, torus9, spawn_rngs(0, 3), None
            )

    def test_rejects_node_mismatch(self, torus9):
        batch, _ = make_ensemble(cycle_graph(5), 2, 10, seed=0)
        with pytest.raises(ProtocolError):
            SelfishWeightedProtocol().execute_round_batch(
                batch, torus9, spawn_rngs(0, 2), None
            )

    def test_run_protocol_batch_weighted(self, torus9):
        batch, _ = make_ensemble(torus9, 3, 18, seed=8)
        result = run_protocol_batch(
            torus9,
            SelfishWeightedProtocol(),
            batch,
            NashStop(),
            max_rounds=20_000,
            seed=9,
        )
        assert result.all_converged
        assert np.all(result.stop_rounds >= 0)
