"""Property-based tests (hypothesis) for core invariants.

These exercise the library's load-bearing algebraic identities and
conservation laws on arbitrary inputs: potential identities, inner-product
axioms, protocol conservation, equilibrium consistency, and the sandwich
inequalities of the paper's analysis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.drops import expected_psi0_after_round
from repro.core.equilibrium import blocking_edges, is_epsilon_nash, is_nash
from repro.core.flows import expected_flows, migration_probabilities
from repro.core.potentials import (
    max_load_difference,
    phi_potential,
    psi0_potential,
    psi1_potential,
)
from repro.core.protocols import (
    PerTaskThresholdProtocol,
    SelfishUniformProtocol,
    SelfishWeightedProtocol,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.model.batch import BatchWeightedState
from repro.model.placement import proportional_placement
from repro.model.speeds import speed_granularity
from repro.model.state import UniformState, WeightedState
from repro.spectral.inner_product import s_dot
from repro.utils.rng import make_rng, spawn_rngs

# Shared strategies -----------------------------------------------------

SIZES = st.integers(min_value=3, max_value=12)


def counts_strategy(n):
    return hnp.arrays(
        dtype=np.int64,
        shape=n,
        elements=st.integers(min_value=0, max_value=200),
    )


def speeds_strategy(n):
    return hnp.arrays(
        dtype=np.float64,
        shape=n,
        elements=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    )


state_strategy = SIZES.flatmap(
    lambda n: st.tuples(counts_strategy(n), speeds_strategy(n))
)


# Potential identities ---------------------------------------------------


class TestPotentialProperties:
    @given(state_strategy)
    @settings(max_examples=80, deadline=None)
    def test_psi0_identity(self, data):
        """Psi_0 = Phi_0 - W^2/S = <e, e>_S >= 0."""
        counts, speeds = data
        state = UniformState(counts, speeds)
        psi0 = psi0_potential(state)
        assert psi0 >= -1e-9
        w = state.total_weight
        via_phi = phi_potential(state, 0) - w * w / state.total_speed
        assert psi0 == pytest.approx(via_phi, rel=1e-7, abs=1e-6)
        via_inner = s_dot(state.deviation, state.deviation, speeds)
        assert psi0 == pytest.approx(via_inner, rel=1e-9, abs=1e-9)

    @given(state_strategy)
    @settings(max_examples=80, deadline=None)
    def test_psi1_nonnegative(self, data):
        """Observation 3.20 (2)."""
        counts, speeds = data
        assert psi1_potential(UniformState(counts, speeds)) >= 0.0

    @given(state_strategy)
    @settings(max_examples=80, deadline=None)
    def test_observation_316_sandwich(self, data):
        counts, speeds = data
        state = UniformState(counts, speeds)
        psi0 = psi0_potential(state)
        l_delta = max_load_difference(state)
        assert l_delta**2 <= psi0 + 1e-6
        assert psi0 <= state.total_speed * l_delta**2 + 1e-6

    @given(state_strategy)
    @settings(max_examples=50, deadline=None)
    def test_deviation_sums_to_zero(self, data):
        counts, speeds = data
        state = UniformState(counts, speeds)
        assert float(state.deviation.sum()) == pytest.approx(0.0, abs=1e-7)


# Flow properties --------------------------------------------------------


class TestFlowProperties:
    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_flows_nonnegative_and_thresholded(self, data):
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        src, dst, flows = expected_flows(state, graph)
        assert np.all(flows >= 0.0)
        loads = state.loads
        positive = flows > 0
        # Flow only across edges beating the selfishness threshold.
        assert np.all(
            loads[src[positive]] - loads[dst[positive]]
            > 1.0 / speeds[dst[positive]]
        )

    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_probabilities_valid(self, data):
        """With alpha = 4 s_max, per-node totals never exceed 1."""
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        src, _, q = migration_probabilities(state, graph)
        assert np.all(q >= 0.0)
        totals = np.zeros(n)
        np.add.at(totals, src, q)
        assert totals.max() <= 1.0 + 1e-9

    @given(state_strategy)
    @settings(max_examples=40, deadline=None)
    def test_nash_iff_no_flows(self, data):
        """Definition 3.7 consistency: NE <=> empty non-Nash edge set."""
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        _, _, flows = expected_flows(state, graph)
        assert is_nash(state, graph) == bool(np.all(flows <= 0.0))


# Protocol conservation --------------------------------------------------


class TestProtocolProperties:
    @given(state_strategy, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_round_conserves_tasks(self, data, seed):
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        total = state.num_tasks
        SelfishUniformProtocol().execute_round(state, graph, make_rng(seed))
        assert state.num_tasks == total
        assert np.all(state.counts >= 0)

    @given(state_strategy, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_expected_potential_never_increases_above_noise(self, data, seed):
        """E[Psi_0 after] <= Psi_0 + n/(4 s_max) (Lemma 3.9 consequence)."""
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        before = psi0_potential(state)
        after = expected_psi0_after_round(state, graph)
        slack = n / (4.0 * float(speeds.max())) + 1e-9
        assert after <= before + slack

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_weighted_round_conserves_weight(self, n, seed):
        rng = make_rng(seed)
        m = int(rng.integers(1, 120))
        weights = rng.uniform(0.05, 1.0, size=m)
        locations = rng.integers(0, n, size=m)
        speeds = rng.uniform(1.0, 4.0, size=n)
        graph = cycle_graph(n)
        state = WeightedState(locations, weights, speeds)
        total = state.total_weight
        SelfishWeightedProtocol().execute_round(state, graph, rng)
        assert state.total_weight == pytest.approx(total, rel=1e-9)
        # W_i must remain the bincount of assigned weights.
        recomputed = np.bincount(state.task_nodes, weights=weights, minlength=n)
        np.testing.assert_allclose(state.node_weights, recomputed, atol=1e-9)


# Equilibrium consistency ------------------------------------------------


class TestEquilibriumProperties:
    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_nash_implies_epsilon_nash(self, data):
        counts, speeds = data
        graph = cycle_graph(counts.shape[0])
        state = UniformState(counts, speeds)
        if is_nash(state, graph):
            for epsilon in (0.1, 0.5, 0.9):
                assert is_epsilon_nash(state, graph, epsilon)

    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_epsilon_monotone(self, data):
        """If an eps-NE holds, every larger eps also holds."""
        counts, speeds = data
        graph = cycle_graph(counts.shape[0])
        state = UniformState(counts, speeds)
        small = is_epsilon_nash(state, graph, 0.2)
        large = is_epsilon_nash(state, graph, 0.6)
        assert not small or large

    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_nash_iff_no_blocking_edges(self, data):
        counts, speeds = data
        graph = cycle_graph(counts.shape[0])
        state = UniformState(counts, speeds)
        assert is_nash(state, graph) == (len(blocking_edges(state, graph)) == 0)


# Model utilities --------------------------------------------------------


class TestModelProperties:
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_proportional_placement_total(self, n, m):
        speeds = np.linspace(1.0, 3.0, n)
        counts = proportional_placement(speeds, m)
        assert counts.sum() == m
        assert np.all(counts >= 0)

    @given(
        st.lists(
            st.integers(min_value=1, max_value=40), min_size=1, max_size=10
        ),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_speed_granularity_divides(self, numerators, denominator):
        speeds = np.array([k / denominator for k in numerators], dtype=float)
        eps = speed_granularity(speeds)
        steps = speeds / eps
        np.testing.assert_allclose(steps, np.rint(steps), atol=1e-6)
        assert 0 < eps <= 1.0


# Batched weighted engine vs scalar reference ---------------------------

GRAPH_FAMILIES = st.sampled_from(
    [cycle_graph, path_graph, complete_graph, star_graph, grid_graph]
)


def weighted_scenario_strategy():
    """(graph, weights, locations, speeds) over random graph families.

    ``grid_graph`` interprets the size draw as a side length, so graphs
    range from 3 to ~25 nodes; weights lie in (0, 1], speeds in [1, 8].
    """
    return st.tuples(
        GRAPH_FAMILIES,
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=2**31 - 1),
    )


class TestBatchedWeightedProperties:
    """The batched weighted kernel against its scalar reference.

    The weighted batch kernel consumes each replica's stream exactly
    like the scalar kernel, so single-round *law agreement* is checked
    at full strength: identical generator states must give bit-identical
    post-round assignments, for arbitrary weight vectors, speeds, and
    graph families.
    """

    @staticmethod
    def _build_scenario(make_graph, size, m, seed):
        graph = make_graph(size)
        n = graph.num_vertices
        rng = make_rng(seed)
        weights = rng.uniform(0.01, 1.0, size=m)
        locations = rng.integers(0, n, size=m)
        speeds = rng.uniform(1.0, 8.0, size=n)
        return graph, WeightedState(locations, weights, speeds)

    @given(
        weighted_scenario_strategy(),
        st.sampled_from(["flow", "pseudocode", "per-task"]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_single_round_batch_matches_scalar(self, scenario, rule, seed):
        make_graph, size, m, state_seed = scenario
        graph, state = self._build_scenario(make_graph, size, m, state_seed)
        if rule == "per-task":
            protocol = PerTaskThresholdProtocol()
        else:
            protocol = SelfishWeightedProtocol(rule=rule)
        batch = BatchWeightedState.from_states([state.copy()])
        summary = protocol.execute_round_batch(
            batch, graph, [make_rng(seed)], None
        )
        scalar_summary = protocol.execute_round(state, graph, make_rng(seed))
        assert scalar_summary.tasks_moved == summary.tasks_moved[0]
        assert scalar_summary.weight_moved == pytest.approx(
            summary.weight_moved[0], abs=1e-12
        )
        assert scalar_summary.saturated == bool(summary.saturated[0])
        np.testing.assert_array_equal(
            batch.replica(0).task_nodes, state.task_nodes
        )
        np.testing.assert_array_equal(
            batch.node_weights[0], state.node_weights
        )

    @given(
        weighted_scenario_strategy(),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_total_weight_exactly_conserved(self, scenario, seed):
        """Total weight per replica is bit-invariant across rounds."""
        make_graph, size, m, state_seed = scenario
        graph, state = self._build_scenario(make_graph, size, m, state_seed)
        replicas = [state.copy() for _ in range(3)]
        batch = BatchWeightedState.from_states(replicas)
        totals = batch.total_task_weight.copy()
        rngs = spawn_rngs(seed, 3)
        protocol = SelfishWeightedProtocol()
        for _ in range(5):
            protocol.execute_round_batch(batch, graph, rngs, None)
            np.testing.assert_array_equal(batch.total_task_weight, totals)
            # Incremental node weights stay consistent with a rebuild.
            rebuilt = batch.copy()
            rebuilt.rebuild_node_weights()
            np.testing.assert_allclose(
                batch.node_weights, rebuilt.node_weights, atol=1e-9
            )
            assert np.all(batch.task_nodes[batch.task_mask] >= 0)

    @given(
        weighted_scenario_strategy(),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_ragged_stack_padding_inert(self, scenario, seed):
        """Replicas of different task counts coexist; padding never moves."""
        make_graph, size, m, state_seed = scenario
        graph, state = self._build_scenario(make_graph, size, m, state_seed)
        rng = make_rng(state_seed + 1)
        short_m = max(1, m // 2)
        short = WeightedState(
            rng.integers(0, graph.num_vertices, size=short_m),
            rng.uniform(0.01, 1.0, size=short_m),
            state.speeds,  # replicas must share one speed vector
        )
        batch = BatchWeightedState.from_states([state, short])
        assert batch.max_tasks == max(state.num_tasks, short.num_tasks)
        padding_before = batch.task_nodes[~batch.task_mask].copy()
        protocol = SelfishWeightedProtocol()
        protocol.execute_round_batch(batch, graph, spawn_rngs(seed, 2), None)
        np.testing.assert_array_equal(
            batch.task_nodes[~batch.task_mask], padding_before
        )
        np.testing.assert_array_equal(
            batch.task_weights[~batch.task_mask], 0.0
        )


# Counter stream layout (PR 5) -------------------------------------------


class TestCounterPolicyProperties:
    """Hypothesis sweep of the counter layout over random weighted cells.

    The counter kernel rewrote the weighted round's draw structure (one
    fused block draw over a per-edge probability table), so the exact
    conservation laws and determinism are asserted over *random*
    configurations — ragged task counts, mixed speeds, random weights —
    not just the curated benchmark cells.
    """

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_counter_rounds_conserve_exactly(self, n, replicas, seed):
        from repro.model.batch import BatchWeightedState
        from repro.utils.rng import CounterStreams

        rng = make_rng(seed)
        graph = cycle_graph(n)
        speeds = rng.uniform(1.0, 4.0, size=n)
        states = []
        for _ in range(replicas):
            m = int(rng.integers(1, 60))
            states.append(
                WeightedState(
                    rng.integers(0, n, size=m),
                    rng.uniform(0.05, 1.0, size=m),
                    speeds,
                )
            )
        batch = BatchWeightedState.from_states(states)
        totals = batch.total_task_weight.copy()
        task_counts = batch.num_tasks.copy()
        streams = CounterStreams(seed, replicas)
        protocol = SelfishWeightedProtocol()
        for round_index in range(8):
            streams.begin_round(round_index)
            protocol.execute_round_batch(batch, graph, streams, None)
            # Weights are immutable and padding inert: totals and task
            # counts are conserved bit-for-bit, and the incremental W_i
            # stays a true bincount.
            np.testing.assert_array_equal(batch.total_task_weight, totals)
            np.testing.assert_array_equal(batch.num_tasks, task_counts)
            rebuilt = batch.copy()
            rebuilt.rebuild_node_weights()
            np.testing.assert_allclose(
                batch.node_weights, rebuilt.node_weights, atol=1e-9
            )

    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_counter_rounds_same_seed_deterministic(self, n, seed):
        from repro.model.batch import BatchWeightedState
        from repro.utils.rng import CounterStreams

        def run():
            rng = make_rng(seed)
            graph = cycle_graph(n)
            speeds = rng.uniform(1.0, 3.0, size=n)
            m = int(rng.integers(4, 40))
            state = WeightedState(
                rng.integers(0, n, size=m),
                rng.uniform(0.05, 1.0, size=m),
                speeds,
            )
            batch = BatchWeightedState.replicate(state, 4)
            streams = CounterStreams(seed, 4)
            protocol = SelfishWeightedProtocol()
            for round_index in range(6):
                streams.begin_round(round_index)
                protocol.execute_round_batch(batch, graph, streams, None)
            return batch.task_nodes.copy()

        np.testing.assert_array_equal(run(), run())
