"""Property-based tests (hypothesis) for core invariants.

These exercise the library's load-bearing algebraic identities and
conservation laws on arbitrary inputs: potential identities, inner-product
axioms, protocol conservation, equilibrium consistency, and the sandwich
inequalities of the paper's analysis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.drops import expected_psi0_after_round
from repro.core.equilibrium import blocking_edges, is_epsilon_nash, is_nash
from repro.core.flows import expected_flows, migration_probabilities
from repro.core.potentials import (
    max_load_difference,
    phi_potential,
    psi0_potential,
    psi1_potential,
)
from repro.core.protocols import SelfishUniformProtocol, SelfishWeightedProtocol
from repro.graphs.generators import cycle_graph, grid_graph
from repro.model.placement import proportional_placement
from repro.model.speeds import speed_granularity
from repro.model.state import UniformState, WeightedState
from repro.spectral.inner_product import s_dot
from repro.utils.rng import make_rng

# Shared strategies -----------------------------------------------------

SIZES = st.integers(min_value=3, max_value=12)


def counts_strategy(n):
    return hnp.arrays(
        dtype=np.int64,
        shape=n,
        elements=st.integers(min_value=0, max_value=200),
    )


def speeds_strategy(n):
    return hnp.arrays(
        dtype=np.float64,
        shape=n,
        elements=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    )


state_strategy = SIZES.flatmap(
    lambda n: st.tuples(counts_strategy(n), speeds_strategy(n))
)


# Potential identities ---------------------------------------------------


class TestPotentialProperties:
    @given(state_strategy)
    @settings(max_examples=80, deadline=None)
    def test_psi0_identity(self, data):
        """Psi_0 = Phi_0 - W^2/S = <e, e>_S >= 0."""
        counts, speeds = data
        state = UniformState(counts, speeds)
        psi0 = psi0_potential(state)
        assert psi0 >= -1e-9
        w = state.total_weight
        via_phi = phi_potential(state, 0) - w * w / state.total_speed
        assert psi0 == pytest.approx(via_phi, rel=1e-7, abs=1e-6)
        via_inner = s_dot(state.deviation, state.deviation, speeds)
        assert psi0 == pytest.approx(via_inner, rel=1e-9, abs=1e-9)

    @given(state_strategy)
    @settings(max_examples=80, deadline=None)
    def test_psi1_nonnegative(self, data):
        """Observation 3.20 (2)."""
        counts, speeds = data
        assert psi1_potential(UniformState(counts, speeds)) >= 0.0

    @given(state_strategy)
    @settings(max_examples=80, deadline=None)
    def test_observation_316_sandwich(self, data):
        counts, speeds = data
        state = UniformState(counts, speeds)
        psi0 = psi0_potential(state)
        l_delta = max_load_difference(state)
        assert l_delta**2 <= psi0 + 1e-6
        assert psi0 <= state.total_speed * l_delta**2 + 1e-6

    @given(state_strategy)
    @settings(max_examples=50, deadline=None)
    def test_deviation_sums_to_zero(self, data):
        counts, speeds = data
        state = UniformState(counts, speeds)
        assert float(state.deviation.sum()) == pytest.approx(0.0, abs=1e-7)


# Flow properties --------------------------------------------------------


class TestFlowProperties:
    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_flows_nonnegative_and_thresholded(self, data):
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        src, dst, flows = expected_flows(state, graph)
        assert np.all(flows >= 0.0)
        loads = state.loads
        positive = flows > 0
        # Flow only across edges beating the selfishness threshold.
        assert np.all(
            loads[src[positive]] - loads[dst[positive]]
            > 1.0 / speeds[dst[positive]]
        )

    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_probabilities_valid(self, data):
        """With alpha = 4 s_max, per-node totals never exceed 1."""
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        src, _, q = migration_probabilities(state, graph)
        assert np.all(q >= 0.0)
        totals = np.zeros(n)
        np.add.at(totals, src, q)
        assert totals.max() <= 1.0 + 1e-9

    @given(state_strategy)
    @settings(max_examples=40, deadline=None)
    def test_nash_iff_no_flows(self, data):
        """Definition 3.7 consistency: NE <=> empty non-Nash edge set."""
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        _, _, flows = expected_flows(state, graph)
        assert is_nash(state, graph) == bool(np.all(flows <= 0.0))


# Protocol conservation --------------------------------------------------


class TestProtocolProperties:
    @given(state_strategy, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_round_conserves_tasks(self, data, seed):
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        total = state.num_tasks
        SelfishUniformProtocol().execute_round(state, graph, make_rng(seed))
        assert state.num_tasks == total
        assert np.all(state.counts >= 0)

    @given(state_strategy, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_expected_potential_never_increases_above_noise(self, data, seed):
        """E[Psi_0 after] <= Psi_0 + n/(4 s_max) (Lemma 3.9 consequence)."""
        counts, speeds = data
        n = counts.shape[0]
        graph = cycle_graph(n)
        state = UniformState(counts, speeds)
        before = psi0_potential(state)
        after = expected_psi0_after_round(state, graph)
        slack = n / (4.0 * float(speeds.max())) + 1e-9
        assert after <= before + slack

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_weighted_round_conserves_weight(self, n, seed):
        rng = make_rng(seed)
        m = int(rng.integers(1, 120))
        weights = rng.uniform(0.05, 1.0, size=m)
        locations = rng.integers(0, n, size=m)
        speeds = rng.uniform(1.0, 4.0, size=n)
        graph = cycle_graph(n)
        state = WeightedState(locations, weights, speeds)
        total = state.total_weight
        SelfishWeightedProtocol().execute_round(state, graph, rng)
        assert state.total_weight == pytest.approx(total, rel=1e-9)
        # W_i must remain the bincount of assigned weights.
        recomputed = np.bincount(state.task_nodes, weights=weights, minlength=n)
        np.testing.assert_allclose(state.node_weights, recomputed, atol=1e-9)


# Equilibrium consistency ------------------------------------------------


class TestEquilibriumProperties:
    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_nash_implies_epsilon_nash(self, data):
        counts, speeds = data
        graph = cycle_graph(counts.shape[0])
        state = UniformState(counts, speeds)
        if is_nash(state, graph):
            for epsilon in (0.1, 0.5, 0.9):
                assert is_epsilon_nash(state, graph, epsilon)

    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_epsilon_monotone(self, data):
        """If an eps-NE holds, every larger eps also holds."""
        counts, speeds = data
        graph = cycle_graph(counts.shape[0])
        state = UniformState(counts, speeds)
        small = is_epsilon_nash(state, graph, 0.2)
        large = is_epsilon_nash(state, graph, 0.6)
        assert not small or large

    @given(state_strategy)
    @settings(max_examples=60, deadline=None)
    def test_nash_iff_no_blocking_edges(self, data):
        counts, speeds = data
        graph = cycle_graph(counts.shape[0])
        state = UniformState(counts, speeds)
        assert is_nash(state, graph) == (len(blocking_edges(state, graph)) == 0)


# Model utilities --------------------------------------------------------


class TestModelProperties:
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_proportional_placement_total(self, n, m):
        speeds = np.linspace(1.0, 3.0, n)
        counts = proportional_placement(speeds, m)
        assert counts.sum() == m
        assert np.all(counts >= 0)

    @given(
        st.lists(
            st.integers(min_value=1, max_value=40), min_size=1, max_size=10
        ),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_speed_granularity_divides(self, numerators, denominator):
        speeds = np.array([k / denominator for k in numerators], dtype=float)
        eps = speed_granularity(speeds)
        steps = speeds / eps
        np.testing.assert_allclose(steps, np.rint(steps), atol=1e-6)
        assert 0 < eps <= 1.0
