"""Tests for repro.graphs.families: closed forms vs numerics."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.graphs.families import FAMILIES, family_names, get_family
from repro.graphs.properties import diameter as measure_diameter
from repro.spectral.eigen import algebraic_connectivity


class TestRegistry:
    def test_expected_families_present(self):
        assert set(family_names()) == {
            "complete",
            "ring",
            "path",
            "mesh",
            "torus",
            "hypercube",
            "fat-tree",
            "leaf-spine",
            "expander",
            "power-law",
        }

    def test_get_family_unknown(self):
        with pytest.raises(ValidationError, match="unknown graph family"):
            get_family("petersen")

    def test_lookup_returns_registered(self):
        assert get_family("ring") is FAMILIES["ring"]


@pytest.mark.parametrize("family_name", family_names())
class TestClosedForms:
    @pytest.mark.parametrize("target", [8, 16, 25])
    def test_lambda2_matches_numeric(self, family_name, target):
        family = get_family(family_name)
        graph = family.make(target)
        n = graph.num_vertices
        assert n == family.admissible_size(target)
        numeric = algebraic_connectivity(graph)
        closed = family.lambda2(n)
        assert numeric == pytest.approx(closed, rel=1e-9, abs=1e-9)

    def test_max_degree_matches(self, family_name):
        family = get_family(family_name)
        graph = family.make(16)
        assert graph.max_degree == family.max_degree(graph.num_vertices)

    def test_diameter_matches(self, family_name):
        family = get_family(family_name)
        graph = family.make(16)
        assert measure_diameter(graph) == family.diameter(graph.num_vertices)


class TestAdmissibleSizes:
    def test_mesh_rounds_to_square(self):
        assert get_family("mesh").admissible_size(17) == 16
        assert get_family("mesh").admissible_size(25) == 25

    def test_hypercube_rounds_to_power_of_two(self):
        assert get_family("hypercube").admissible_size(20) == 16
        assert get_family("hypercube").admissible_size(48) == 64

    def test_ring_minimum(self):
        assert get_family("ring").admissible_size(2) == 3


class TestTable1Bounds:
    def test_this_paper_below_prior(self):
        """Our bound rows must be asymptotically below [6]'s at real sizes."""
        for family_name in family_names():
            family = get_family(family_name)
            n, m = 64, 64 * 64
            assert family.approx_bound_this(n, m) < family.approx_bound_prior(n, m)
            assert family.exact_bound_this(n) < family.exact_bound_prior(n)

    def test_bounds_monotone_in_n(self):
        for family_name in family_names():
            family = get_family(family_name)
            small = family.exact_bound_this(16)
            large = family.exact_bound_this(64)
            assert large > small

    def test_log_ratio_floor(self):
        family = get_family("complete")
        # m == n would give ln(1) = 0; the floor keeps the bound positive.
        assert family.approx_bound_this(16, 16) >= 1.0
