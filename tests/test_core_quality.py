"""Tests for repro.core.quality."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.quality import (
    load_discrepancy,
    lpt_makespan,
    makespan,
    optimal_makespan_lower_bound,
    price_of_anarchy_estimate,
    quality_report,
)
from repro.errors import ModelError
from repro.model.state import UniformState, WeightedState


class TestMakespanAndDiscrepancy:
    def test_makespan_uniform(self):
        state = UniformState([6, 2, 4], [2.0, 1.0, 1.0])
        assert makespan(state) == pytest.approx(4.0)

    def test_discrepancy(self):
        state = UniformState([6, 2, 4], [2.0, 1.0, 1.0])
        assert load_discrepancy(state) == pytest.approx(4.0 - 2.0)

    def test_balanced_zero_discrepancy(self):
        state = UniformState([4, 4, 4], np.ones(3))
        assert load_discrepancy(state) == 0.0

    def test_weighted_state(self):
        state = WeightedState([0, 1], [1.0, 0.5], [1.0, 1.0])
        assert makespan(state) == pytest.approx(1.0)


class TestOptimalLowerBound:
    def test_average_dominates(self):
        # 10 unit tasks on 2 unit machines: LB = 5.
        assert optimal_makespan_lower_bound(np.ones(10), [1.0, 1.0]) == 5.0

    def test_heaviest_task_dominates(self):
        # One task of weight 1 on two speed-1 machines: LB = 1.
        assert optimal_makespan_lower_bound([1.0], [1.0, 1.0]) == 1.0

    def test_speeds_scale_average(self):
        assert optimal_makespan_lower_bound(np.ones(12), [1.0, 2.0]) == 4.0

    def test_empty_tasks(self):
        assert optimal_makespan_lower_bound([], [1.0]) == 0.0

    def test_bad_speeds(self):
        with pytest.raises(ModelError):
            optimal_makespan_lower_bound([1.0], [0.0])


class TestLpt:
    def test_unit_tasks_balanced(self):
        # 9 unit tasks on 3 unit machines: perfect split.
        assert lpt_makespan(np.ones(9), np.ones(3)) == pytest.approx(3.0)

    def test_respects_speeds(self):
        # 6 unit tasks, speeds (2, 1): 4 on fast, 2 on slow -> makespan 2.
        assert lpt_makespan(np.ones(6), [2.0, 1.0]) == pytest.approx(2.0)

    def test_never_below_lower_bound(self, rng):
        for _ in range(20):
            weights = rng.uniform(0.1, 1.0, size=30)
            speeds = rng.uniform(1.0, 3.0, size=4)
            assert lpt_makespan(weights, speeds) >= optimal_makespan_lower_bound(
                weights, speeds
            ) - 1e-9

    def test_within_factor_two_of_bound(self, rng):
        """LPT is a constant-factor approximation on related machines."""
        for _ in range(20):
            weights = rng.uniform(0.1, 1.0, size=50)
            speeds = rng.uniform(1.0, 3.0, size=5)
            ratio = lpt_makespan(weights, speeds) / optimal_makespan_lower_bound(
                weights, speeds
            )
            assert ratio <= 2.0

    def test_empty(self):
        assert lpt_makespan([], [1.0, 1.0]) == 0.0


class TestQualityReport:
    def test_fields_consistent(self):
        state = UniformState([10, 4, 4], np.ones(3))
        report = quality_report(state)
        assert report.makespan == pytest.approx(10.0)
        assert report.optimum_lower_bound == pytest.approx(6.0)
        assert report.poa_estimate == pytest.approx(10.0 / 6.0)
        assert report.lpt_makespan >= report.optimum_lower_bound - 1e-9

    def test_poa_at_least_one_at_equilibrium(self):
        """A converged NE's makespan is >= the LP lower bound."""
        graph = repro.torus_graph(3)
        n = graph.num_vertices
        state = repro.UniformState(
            repro.all_on_one_placement(n, 20 * n), repro.uniform_speeds(n)
        )
        repro.run_protocol(
            graph,
            repro.SelfishUniformProtocol(),
            state,
            stopping=repro.NashStop(),
            max_rounds=50_000,
            seed=1,
        )
        assert price_of_anarchy_estimate(state) >= 1.0 - 1e-9

    def test_nash_quality_close_to_optimal_on_complete_graph(self):
        """On complete graphs NE and near-optimal states coincide."""
        graph = repro.complete_graph(8)
        state = repro.UniformState(
            repro.all_on_one_placement(8, 800), repro.uniform_speeds(8)
        )
        repro.run_protocol(
            graph,
            repro.SelfishUniformProtocol(),
            state,
            stopping=repro.NashStop(),
            max_rounds=50_000,
            seed=2,
        )
        report = quality_report(state)
        assert report.poa_estimate <= 1.02
