"""Counter stream layout: pipeline-level contracts (PR 5 tentpole).

The ``rng_policy="counter"`` layout must match the scalar reference *in
law* (KS over first-hitting rounds), be same-seed deterministic, and —
for the static weighted cells, whose draw sites consume a fixed number
of uniforms per replica per round — stay resize prefix-stable. The
spawned layout's bit-identity contracts are covered by the existing
engine suites; this module pins the counter layout's own guarantees plus
the routing/validation rules that keep the two policies from being
silently mixed up.

``TestPolicyMatrix`` runs the measurement pipeline under whichever
policy the pytest invocation selects (``--rng-policy``, default
spawned); CI runs the fast tier once per policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.convergence import measure_convergence_rounds
from repro.core.protocols import (
    PerTaskThresholdProtocol,
    SelfishUniformProtocol,
    SelfishWeightedProtocol,
)
from repro.core.stopping import NashStop, PotentialThresholdStop
from repro.errors import ValidationError
from repro.experiments._common import measure_weighted_threshold_time
from repro.experiments.scenario_cells import measure_scenario_recovery
from repro.graphs.generators import cycle_graph, star_graph, torus_graph
from repro.model.batch import BatchUniformState, BatchWeightedState
from repro.model.placement import adversarial_placement, place_weighted_random
from repro.model.speeds import two_class_speeds, uniform_speeds
from repro.model.state import UniformState, WeightedState
from repro.model.tasks import two_class_weights
from repro.spectral.eigen import algebraic_connectivity
from repro.theory.constants import psi_critical
from repro.utils.rng import CounterStreams, spawn_rngs

from tests.equivalence import (
    assert_batch_conserves,
    assert_counter_matches_scalar_law,
    assert_prefix_stability,
    assert_same_seed_determinism,
)


def _weighted_cell(n: int = 8, m_per_n: int = 8):
    graph = cycle_graph(n)
    m = m_per_n * n
    speeds = two_class_speeds(n, fast_fraction=0.25, fast_speed=2.0)
    weights = two_class_weights(m, heavy_fraction=0.1, heavy=1.0, light=0.1)

    def factory(rng: np.random.Generator) -> WeightedState:
        return WeightedState(place_weighted_random(m, n, rng), weights, speeds)

    return graph, factory


def _uniform_cell():
    graph = torus_graph(3)
    n = graph.num_vertices
    m = 8 * n * n
    speeds = uniform_speeds(n)
    lambda2 = algebraic_connectivity(graph)
    threshold = 4.0 * psi_critical(n, graph.max_degree, lambda2, 1.0)

    def factory(rng: np.random.Generator) -> UniformState:
        return UniformState(adversarial_placement(speeds, m), speeds)

    return graph, factory, PotentialThresholdStop(threshold, "psi0")


class TestCounterLawAgreement:
    @pytest.mark.slow
    def test_weighted_first_hits_match_scalar(self):
        graph, factory = _weighted_cell()
        assert_counter_matches_scalar_law(
            graph=graph,
            protocol=SelfishWeightedProtocol(),
            state_factory=factory,
            stopping=NashStop(),
            repetitions=200,
            max_rounds=50_000,
            seed=42,
        )

    @pytest.mark.slow
    def test_per_task_first_hits_match_scalar(self):
        graph, factory = _weighted_cell()
        assert_counter_matches_scalar_law(
            graph=graph,
            protocol=PerTaskThresholdProtocol(),
            state_factory=factory,
            stopping=NashStop(),
            repetitions=200,
            max_rounds=50_000,
            seed=42,
        )

    @pytest.mark.slow
    def test_uniform_first_hits_match_scalar(self):
        graph, factory, stopping = _uniform_cell()
        assert_counter_matches_scalar_law(
            graph=graph,
            protocol=SelfishUniformProtocol(),
            state_factory=factory,
            stopping=stopping,
            repetitions=200,
            max_rounds=20_000,
            seed=42,
        )

    def test_weighted_quick_agreement(self):
        """A fast (60-rep) KS sanity check kept in the fast tier."""
        graph, factory = _weighted_cell()
        assert_counter_matches_scalar_law(
            graph=graph,
            protocol=SelfishWeightedProtocol(),
            state_factory=factory,
            stopping=NashStop(),
            repetitions=60,
            max_rounds=50_000,
            seed=42,
        )


class TestCounterDeterminism:
    def test_weighted_same_seed_bit_identical(self):
        graph, factory = _weighted_cell()

        def run():
            measurement = measure_convergence_rounds(
                graph=graph,
                protocol=SelfishWeightedProtocol(),
                state_factory=factory,
                stopping=NashStop(),
                repetitions=12,
                max_rounds=50_000,
                seed=7,
                engine="batch",
                rng_policy="counter",
            )
            return (measurement.repetition_rounds,)

        assert_same_seed_determinism(run)

    def test_uniform_same_seed_bit_identical(self):
        graph, factory, stopping = _uniform_cell()

        def run():
            measurement = measure_convergence_rounds(
                graph=graph,
                protocol=SelfishUniformProtocol(),
                state_factory=factory,
                stopping=stopping,
                repetitions=12,
                max_rounds=20_000,
                seed=7,
                engine="batch",
                rng_policy="counter",
            )
            return (measurement.repetition_rounds,)

        assert_same_seed_determinism(run)

    def test_weighted_resize_prefix_stable(self):
        """Counter streams are replica-indexed (Philox counter rows), so
        growing a static weighted ensemble must not perturb the prefix."""
        graph, factory = _weighted_cell()

        def run(repetitions: int):
            measurement = measure_convergence_rounds(
                graph=graph,
                protocol=SelfishWeightedProtocol(),
                state_factory=factory,
                stopping=NashStop(),
                repetitions=repetitions,
                max_rounds=50_000,
                seed=7,
                engine="batch",
                rng_policy="counter",
            )
            return (measurement.repetition_rounds,)

        assert_prefix_stability(run, small=6, large=14)


class TestCounterKernelInvariants:
    def test_weighted_conservation_with_retirement(self):
        graph, factory = _weighted_cell()
        children = spawn_rngs(3, 8)
        batch = BatchWeightedState.from_states(
            [factory(child) for child in children]
        )
        streams = CounterStreams(3, 8)
        assert_batch_conserves(
            batch,
            SelfishWeightedProtocol(),
            graph,
            streams,
            rounds=40,
            retired=(1, 5),
        )

    def test_uniform_conservation_with_retirement(self):
        graph, factory, _ = _uniform_cell()
        children = spawn_rngs(3, 8)
        batch = BatchUniformState.from_states(
            [factory(child) for child in children]
        )
        streams = CounterStreams(3, 8)
        assert_batch_conserves(
            batch,
            SelfishUniformProtocol(),
            graph,
            streams,
            rounds=40,
            retired=(0, 6),
        )

    def test_weighted_ragged_stack_padding_never_moves(self):
        """Padded (unequal-m) stacks under the counter kernel keep
        padding inert and totals exact."""
        n = 6
        graph = cycle_graph(n)
        speeds = uniform_speeds(n)
        rng = np.random.default_rng(0)
        states = [
            WeightedState(
                place_weighted_random(m, n, rng),
                rng.uniform(0.2, 1.0, size=m),
                speeds,
            )
            for m in (5, 11, 2)
        ]
        batch = BatchWeightedState.from_states(states)
        streams = CounterStreams(5, 3)
        protocol = SelfishWeightedProtocol()
        totals = batch.total_task_weight.copy()
        masks = batch.task_mask.copy()
        for round_index in range(30):
            streams.begin_round(round_index)
            protocol.execute_round_batch(batch, graph, streams, None)
        np.testing.assert_array_equal(batch.task_mask, masks)
        np.testing.assert_allclose(batch.total_task_weight, totals, rtol=0, atol=0)
        assert np.all(batch.task_nodes[~batch.task_mask] == -1)

    def test_isolated_node_cannot_corrupt_saturation(self):
        """Regression: a task on a degree-0 node used to produce edge
        index ``indptr[i] - 1`` (possibly ``-1``), wrapping the
        saturation gather into another replica's edge entries — a
        saturated replica then leaked its flag onto the isolated one."""
        from repro.graphs.graph import Graph

        graph = Graph(3, [(1, 2)])  # node 0 isolated
        speeds = uniform_speeds(3)
        # Replica 0: only an isolated task — its raw flat index is -1,
        # which wraps to the *last* edge entry of the last replica.
        # Replica 1: a heavy imbalance whose saturated direction is
        # exactly that last CSR edge (2 -> 1) under an ablation alpha.
        states = [
            WeightedState(np.array([0]), np.array([1.0]), speeds),
            WeightedState(np.array([2, 2]), np.array([1.0, 1.0]), speeds),
        ]
        batch = BatchWeightedState.from_states(states)
        protocol = SelfishWeightedProtocol(alpha=0.01)
        streams = CounterStreams(1, 2)
        streams.begin_round(0)
        counter = protocol.execute_round_batch(batch.copy(), graph, streams, None)
        spawned = protocol.execute_round_batch(
            batch.copy(), graph, spawn_rngs(1, 2), None
        )
        np.testing.assert_array_equal(counter.saturated, spawned.saturated)
        assert not counter.saturated[0]  # the isolated replica is clean

    def test_isolated_centre_star_matches_law(self):
        """star_graph leaves no isolated nodes, but a degree-0 guard
        path still exists: tasks on a zero-degree node never migrate."""
        # Build a graph with an isolated node by using a star and a
        # detached extra vertex via counts placed on it.
        graph = star_graph(4)
        n = graph.num_vertices
        weights = np.full(10, 0.5)
        rng = np.random.default_rng(1)
        states = [
            WeightedState(rng.integers(0, n, size=10), weights, uniform_speeds(n))
            for _ in range(4)
        ]
        batch = BatchWeightedState.from_states(states)
        streams = CounterStreams(2, 4)
        protocol = SelfishWeightedProtocol()
        for round_index in range(20):
            streams.begin_round(round_index)
            protocol.execute_round_batch(batch, graph, streams, None)
        np.testing.assert_allclose(
            batch.total_task_weight, np.full(4, 5.0), atol=0
        )


class TestCounterRouting:
    def test_scalar_engine_rejects_counter(self):
        graph, factory = _weighted_cell()
        with pytest.raises(ValidationError):
            measure_convergence_rounds(
                graph=graph,
                protocol=SelfishWeightedProtocol(),
                state_factory=factory,
                stopping=NashStop(),
                repetitions=2,
                max_rounds=10,
                seed=1,
                engine="scalar",
                rng_policy="counter",
            )

    def test_unknown_policy_rejected(self):
        graph, factory = _weighted_cell()
        with pytest.raises(ValidationError):
            measure_convergence_rounds(
                graph=graph,
                protocol=SelfishWeightedProtocol(),
                state_factory=factory,
                stopping=NashStop(),
                repetitions=2,
                max_rounds=10,
                seed=1,
                rng_policy="philox",
            )

    def test_counter_forces_batch_engine(self):
        graph, factory = _weighted_cell()
        measurement = measure_convergence_rounds(
            graph=graph,
            protocol=SelfishWeightedProtocol(),
            state_factory=factory,
            stopping=NashStop(),
            repetitions=3,
            max_rounds=50_000,
            seed=1,
            engine="auto",
            rng_policy="counter",
        )
        assert measurement.engine == "batch"

    def test_counter_requires_stackable_states(self):
        """Mixed speed vectors cannot stack, so counter must raise
        rather than silently fall back to the scalar loop."""
        n = 6
        graph = cycle_graph(n)
        m = 12
        weights = np.full(m, 0.5)

        def factory(rng: np.random.Generator) -> WeightedState:
            speeds = rng.uniform(1.0, 2.0, size=n)  # differs per replica
            return WeightedState(
                place_weighted_random(m, n, rng), weights, speeds
            )

        with pytest.raises(ValidationError):
            measure_convergence_rounds(
                graph=graph,
                protocol=SelfishWeightedProtocol(),
                state_factory=factory,
                stopping=NashStop(),
                repetitions=3,
                max_rounds=10,
                seed=1,
                rng_policy="counter",
            )

    def test_ablation_alpha_weighted_counter_runs(self):
        """The weighted clip is shared per task/edge, so the counter
        kernel accepts ablation alphas exactly like the spawned batch."""
        graph, factory = _weighted_cell()
        measurement = measure_convergence_rounds(
            graph=graph,
            protocol=SelfishWeightedProtocol(alpha=1.0),
            state_factory=factory,
            stopping=NashStop(),
            repetitions=4,
            max_rounds=50_000,
            seed=3,
            rng_policy="counter",
        )
        assert measurement.engine == "batch"


class TestPolicyMatrix:
    """Pipeline smoke under the CLI-selected policy (CI runs both)."""

    def test_weighted_measurement_cell(self, cli_rng_policy):
        measurement = measure_weighted_threshold_time(
            "ring", 8, m_factor=8.0, repetitions=3, seed=20120716,
            rng_policy=cli_rng_policy,
        )
        assert measurement.num_converged == measurement.num_repetitions

    def test_scenario_recovery_cell(self, cli_rng_policy):
        cell = measure_scenario_recovery(
            "torus", 9, m_factor=8.0, repetitions=10, seed=20120716,
            tasks="uniform", horizon=120, rng_policy=cli_rng_policy,
        )
        assert cell.engine == "batch"
        assert cell.num_recovered == cell.num_replicas
