"""Tests for repro.diffusion.matchings (dimension exchange)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.simulator import run_protocol
from repro.core.stopping import PotentialThresholdStop
from repro.diffusion.matchings import DimensionExchangeProtocol, greedy_edge_coloring
from repro.errors import ProtocolError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    torus_graph,
)
from repro.model.state import UniformState, WeightedState


class TestGreedyEdgeColoring:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(8), torus_graph(3), hypercube_graph(3), complete_graph(5)],
    )
    def test_colors_are_matchings(self, graph):
        matchings = greedy_edge_coloring(graph)
        covered = 0
        for matching in matchings:
            endpoints = graph.edges[matching].ravel()
            assert np.unique(endpoints).shape[0] == endpoints.shape[0]
            covered += matching.shape[0]
        assert covered == graph.num_edges

    def test_color_count_bounded(self):
        graph = torus_graph(4)
        assert len(greedy_edge_coloring(graph)) <= 2 * graph.max_degree - 1

    def test_hypercube_dimension_count(self):
        """Q_3 is 3-edge-colourable by dimension; greedy finds <= 5."""
        graph = hypercube_graph(3)
        assert len(greedy_edge_coloring(graph)) <= 5


class TestDimensionExchange:
    def test_requires_uniform_state(self, ring8, rng):
        state = WeightedState([0], [0.5], np.ones(8))
        with pytest.raises(ProtocolError):
            DimensionExchangeProtocol().execute_round(state, ring8, rng)

    def test_mass_conserved(self, rng):
        graph = torus_graph(3)
        state = UniformState(np.array([90] + [0] * 8), np.ones(9))
        protocol = DimensionExchangeProtocol()
        for _ in range(40):
            protocol.execute_round(state, graph, rng)
            assert state.num_tasks == 90
            assert np.all(state.counts >= 0)

    def test_pair_balances_on_single_edge(self, rng):
        graph = path_graph(2)
        state = UniformState([10, 0], [1.0, 1.0])
        protocol = DimensionExchangeProtocol()
        protocol.execute_round(state, graph, rng)
        np.testing.assert_array_equal(state.counts, [5, 5])

    def test_speed_proportional_split(self, rng):
        graph = path_graph(2)
        state = UniformState([12, 0], [1.0, 2.0])
        protocol = DimensionExchangeProtocol()
        protocol.execute_round(state, graph, rng)
        np.testing.assert_array_equal(state.counts, [4, 8])

    def test_balanced_pair_stable(self, rng):
        graph = path_graph(2)
        state = UniformState([5, 5], [1.0, 1.0])
        protocol = DimensionExchangeProtocol()
        summary = protocol.execute_round(state, graph, rng)
        assert summary.tasks_moved == 0

    def test_converges_on_hypercube(self, rng):
        """Classic dimension exchange on Q_3 balances quickly."""
        graph = hypercube_graph(3)
        state = UniformState(np.array([800] + [0] * 7), np.ones(8))
        result = run_protocol(
            graph,
            DimensionExchangeProtocol(),
            state,
            stopping=PotentialThresholdStop(64.0, "psi0"),
            max_rounds=200,
            seed=1,
        )
        assert result.converged
        # 3 colour classes: a handful of sweeps suffices.
        assert result.stop_round <= 30

    def test_round_robin_covers_all_colors(self, rng):
        """Consecutive rounds activate different matchings."""
        graph = cycle_graph(4)  # 2-edge-colourable
        protocol = DimensionExchangeProtocol()
        state = UniformState(np.array([40, 0, 0, 0]), np.ones(4))
        first = protocol.execute_round(state, graph, rng)
        second = protocol.execute_round(state, graph, rng)
        # Both rounds moved something: both matchings saw imbalance.
        assert first.tasks_moved > 0
        assert second.tasks_moved > 0
