"""Tests for repro.model.speeds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpeedError
from repro.model.speeds import (
    geometric_speeds,
    granular_speeds,
    linear_speeds,
    normalize_speeds,
    random_integer_speeds,
    speed_granularity,
    speed_stats,
    two_class_speeds,
    uniform_speeds,
)


class TestUniformSpeeds:
    def test_all_ones(self):
        np.testing.assert_array_equal(uniform_speeds(4), np.ones(4))


class TestTwoClassSpeeds:
    def test_split(self):
        speeds = two_class_speeds(8, 0.25, 3.0)
        assert np.count_nonzero(speeds == 3.0) == 2
        assert np.count_nonzero(speeds == 1.0) == 6

    def test_zero_fraction(self):
        np.testing.assert_array_equal(two_class_speeds(4, 0.0, 2.0), np.ones(4))

    def test_full_fraction(self):
        np.testing.assert_array_equal(two_class_speeds(4, 1.0, 2.0), np.full(4, 2.0))

    def test_fast_below_one_rejected(self):
        with pytest.raises(SpeedError):
            two_class_speeds(4, 0.5, 0.5)

    def test_bad_fraction(self):
        with pytest.raises(SpeedError):
            two_class_speeds(4, 1.5, 2.0)


class TestLinearGeometric:
    def test_linear_endpoints(self):
        speeds = linear_speeds(5, 3.0)
        assert speeds[0] == 1.0
        assert speeds[-1] == 3.0
        assert np.all(np.diff(speeds) > 0)

    def test_geometric_endpoints(self):
        speeds = geometric_speeds(5, 4.0)
        assert speeds[0] == pytest.approx(1.0)
        assert speeds[-1] == pytest.approx(4.0)
        ratios = speeds[1:] / speeds[:-1]
        np.testing.assert_allclose(ratios, ratios[0])

    def test_single_node(self):
        np.testing.assert_array_equal(linear_speeds(1, 5.0), [1.0])
        np.testing.assert_array_equal(geometric_speeds(1, 5.0), [1.0])

    def test_smax_below_one_rejected(self):
        with pytest.raises(SpeedError):
            linear_speeds(3, 0.9)


class TestRandomIntegerSpeeds:
    def test_integral_and_bounded(self):
        speeds = random_integer_speeds(50, 4, seed=0)
        assert np.all(speeds == np.rint(speeds))
        assert speeds.min() == 1.0  # guaranteed one slow machine
        assert speeds.max() <= 4.0

    def test_deterministic(self):
        a = random_integer_speeds(10, 3, seed=1)
        b = random_integer_speeds(10, 3, seed=1)
        np.testing.assert_array_equal(a, b)


class TestGranularSpeeds:
    def test_multiples_of_granularity(self):
        speeds = granular_speeds(30, 3.0, 0.5, seed=2)
        steps = speeds / 0.5
        np.testing.assert_allclose(steps, np.rint(steps), atol=1e-12)
        assert speeds.min() == pytest.approx(1.0)
        assert speeds.max() <= 3.0

    def test_non_divisor_granularity_rejected(self):
        with pytest.raises(SpeedError):
            granular_speeds(5, 2.0, 0.3)

    def test_granularity_above_one_rejected(self):
        with pytest.raises(SpeedError):
            granular_speeds(5, 2.0, 1.5)

    def test_smax_below_one_rejected(self):
        with pytest.raises(SpeedError):
            granular_speeds(5, 0.5, 0.5)


class TestNormalizeSpeeds:
    def test_scales_min_to_one(self):
        speeds = normalize_speeds([2.0, 4.0, 6.0])
        np.testing.assert_allclose(speeds, [1.0, 2.0, 3.0])

    def test_rejects_non_positive(self):
        with pytest.raises(SpeedError):
            normalize_speeds([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(SpeedError):
            normalize_speeds([])


class TestSpeedGranularity:
    def test_integer_speeds(self):
        assert speed_granularity([1.0, 2.0, 3.0]) == 1.0

    def test_half_granularity(self):
        assert speed_granularity([1.0, 1.5, 2.5]) == pytest.approx(0.5)

    def test_quarter(self):
        assert speed_granularity([1.0, 1.25, 2.0]) == pytest.approx(0.25)

    def test_capped_at_one(self):
        """Paper defines eps in (0, 1]; all-even speeds would gcd to 2."""
        assert speed_granularity([2.0, 4.0]) == 1.0

    def test_gcd_above_one_divided_down(self):
        """gcd 1.5 is inadmissible; the largest valid eps is 0.75."""
        assert speed_granularity([1.5]) == pytest.approx(0.75)
        assert speed_granularity([1.5, 3.0]) == pytest.approx(0.75)

    def test_result_always_divides(self):
        for speeds in ([2.5], [3.0, 4.5], [1.0, 2.4]):
            eps = speed_granularity(speeds)
            steps = np.asarray(speeds) / eps
            np.testing.assert_allclose(steps, np.rint(steps), atol=1e-9)
            assert 0 < eps <= 1.0

    def test_rejects_non_positive(self):
        with pytest.raises(SpeedError):
            speed_granularity([1.0, -1.0])


class TestSpeedStats:
    def test_values(self):
        stats = speed_stats([1.0, 2.0, 2.0, 4.0])
        assert stats.n == 4
        assert stats.s_min == 1.0
        assert stats.s_max == 4.0
        assert stats.total == 9.0
        assert stats.arithmetic_mean == pytest.approx(2.25)
        assert stats.harmonic_mean == pytest.approx(4.0 / (1.0 + 0.5 + 0.5 + 0.25))
        assert stats.granularity == 1.0

    def test_harmonic_leq_arithmetic(self, rng):
        speeds = rng.uniform(1.0, 5.0, size=20)
        stats = speed_stats(speeds)
        assert stats.harmonic_mean <= stats.arithmetic_mean + 1e-12
