"""Compiled-trace replay: determinism and the byte-identity matrix.

The trace compiler's contract is that a compiled schedule consumes zero
replica-stream randomness, so a replay is byte-identical across

* engines (scalar vs batch, for weighted task systems),
* both RNG policies (same ``num_tasks`` trajectory; same full state
  per policy),
* worker/shard windows vs the monolithic ensemble,
* a trace that went through save/load vs the in-memory original.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import complete_graph, torus_graph
from repro.model import (
    BatchUniformState,
    BatchWeightedState,
    UniformState,
    WeightedState,
    two_class_weights,
)
from repro.scenarios import (
    AdversarialArrival,
    ScenarioRunner,
    TraceArrival,
    TraceDeparture,
    TraceRelocation,
)
from repro.scenarios.runner import merge_replica_results
from repro.workloads import build_workload, compile_trace, load_trace, save_trace
from repro.workloads.compiler import compile_event
from repro.workloads.trace import TraceEvent, task_timeline


def make_runner(trace, tasks="weighted"):
    from repro.experiments.scenario_cells import _scenario_setup

    graph = torus_graph(3)
    assert trace.num_nodes == graph.num_vertices
    protocol, target, factory = _scenario_setup(graph, tasks, trace.initial_tasks)
    runner = ScenarioRunner(
        graph, protocol, compile_trace(trace), target=target
    )
    return runner, factory


def result_arrays(result):
    return {
        "psi0": result.psi0,
        "num_tasks": result.num_tasks,
        "total_weight": result.total_weight,
        "max_load_difference": result.max_load_difference,
        "nash_violation": result.nash_violation,
    }


def assert_byte_identical(first, second):
    """Exact equality on every observable except ``total_weight``.

    ``total_weight`` is a float reduction over the weighted stack's
    padded slot axis, whose width can differ between shard windows and
    the monolithic stack (compaction triggers on the stack-wide
    maximum), so its pairwise-summation grouping — not its value — is
    width-dependent. The repo-wide convention (tests/equivalence.py)
    compares it at ``atol=1e-9``; everything else is byte-exact.
    """
    for name, values in result_arrays(first).items():
        if name == "total_weight":
            np.testing.assert_allclose(
                values, result_arrays(second)[name], atol=1e-9, err_msg=name
            )
        else:
            np.testing.assert_array_equal(
                values, result_arrays(second)[name], err_msg=name
            )


@pytest.fixture(scope="module")
def trace():
    return build_workload(
        "mmpp-flash", num_nodes=9, horizon=30, seed=11, initial_tasks=60
    )


class TestCompiler:
    def test_compiled_schedule_is_deterministic(self, trace):
        schedule = compile_trace(trace)
        assert schedule.is_deterministic
        assert len(schedule.entries) == trace.num_events

    def test_compile_is_reproducible(self, trace):
        assert compile_trace(trace).entries == compile_trace(trace).entries

    def test_event_kinds_map_to_deterministic_events(self):
        cases = {
            TraceEvent(round_index=0, kind="arrival", targets=(1, 2)): TraceArrival,
            TraceEvent(round_index=0, kind="departure", count=2): TraceDeparture,
            TraceEvent(
                round_index=0, kind="relocation", node=1, fraction=0.5
            ): TraceRelocation,
            TraceEvent(round_index=0, kind="adversarial", count=3): AdversarialArrival,
        }
        for trace_event, expected in cases.items():
            compiled = compile_event(trace_event)
            assert isinstance(compiled, expected)
            assert compiled.deterministic

    def test_compile_validates(self):
        bad = build_workload(
            "mmpp", num_nodes=4, horizon=10, seed=1, initial_tasks=10
        )
        object.__setattr__(bad, "initial_tasks", 0)  # break departure safety
        with pytest.raises(ValidationError):
            compile_trace(bad)


class TestSaveLoadReplayIdentity:
    def test_loaded_trace_replays_byte_identical(self, trace, tmp_path):
        """generate -> save -> load -> compile -> run == generate -> compile -> run."""
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        for policy in ("spawned", "counter"):
            runner, factory = make_runner(trace)
            direct = runner.run_ensemble(
                factory, 4, trace.horizon, seed=5, engine="batch",
                rng_policy=policy,
            )
            runner_loaded, factory_loaded = make_runner(loaded)
            replayed = runner_loaded.run_ensemble(
                factory_loaded, 4, trace.horizon, seed=5, engine="batch",
                rng_policy=policy,
            )
            assert_byte_identical(direct, replayed)


class TestReplayIdentityMatrix:
    @pytest.mark.parametrize("policy", ["spawned", "counter"])
    def test_sharded_equals_monolithic(self, trace, policy):
        """Replica windows merge byte-identically under both policies.

        Counter-policy windows are only legal because the compiled
        schedule is deterministic and the weighted kernel is
        counter-shardable — exactly the relaxation this layer adds.
        """
        runner, factory = make_runner(trace)
        monolithic = runner.run_ensemble(
            factory, 6, trace.horizon, seed=9, engine="batch",
            rng_policy=policy,
        )
        shards = []
        for offset, count in ((0, 2), (2, 2), (4, 2)):
            shard_runner, shard_factory = make_runner(trace)
            shards.append(
                shard_runner.run_ensemble(
                    shard_factory, 6, trace.horizon, seed=9, engine="batch",
                    rng_policy=policy, replica_offset=offset,
                    replica_count=count,
                )
            )
        merged = merge_replica_results(shards)
        assert_byte_identical(monolithic, merged)

    def test_scalar_equals_batch_spawned(self, trace):
        """Weighted kernels are pathwise identical across engines."""
        runner, factory = make_runner(trace)
        batch = runner.run_ensemble(
            factory, 3, trace.horizon, seed=4, engine="batch"
        )
        runner_s, factory_s = make_runner(trace)
        scalar = runner_s.run_ensemble(
            factory_s, 3, trace.horizon, seed=4, engine="scalar"
        )
        assert_byte_identical(batch, scalar)

    def test_num_tasks_identical_across_policies(self, trace):
        """Deterministic events fix the task trajectory for *both*
        policies — kernels differ pathwise, the workload does not."""
        results = {}
        for policy in ("spawned", "counter"):
            runner, factory = make_runner(trace)
            results[policy] = runner.run_ensemble(
                factory, 3, trace.horizon, seed=4, engine="batch",
                rng_policy=policy,
            )
        np.testing.assert_array_equal(
            results["spawned"].num_tasks, results["counter"].num_tasks
        )

    def test_trajectory_matches_trace_timeline(self, trace):
        runner, factory = make_runner(trace)
        result = runner.run_ensemble(
            factory, 3, trace.horizon, seed=4, engine="batch"
        )
        expected = task_timeline(trace)
        observed = result.num_tasks
        np.testing.assert_array_equal(
            observed, np.broadcast_to(expected[:, None], observed.shape)
        )

    def test_uniform_counter_window_refused(self, trace):
        """The relaxation is weighted-only: the uniform kernel's
        whole-stack multinomial site cannot shard."""
        runner, factory = make_runner(trace, tasks="uniform")
        with pytest.raises(ValidationError, match="counter"):
            runner.run_ensemble(
                factory, 4, trace.horizon, seed=4, engine="batch",
                rng_policy="counter", replica_offset=0, replica_count=2,
            )


def uniform_pair(counts):
    counts = np.asarray(counts, dtype=np.int64)
    speeds = np.ones(counts.size, dtype=np.float64)
    scalar = UniformState(counts.copy(), speeds)
    batch = BatchUniformState(
        np.stack([counts.copy(), counts.copy()]), speeds
    )
    return scalar, batch


def weighted_pair(task_nodes, num_nodes):
    task_nodes = np.asarray(task_nodes, dtype=np.int64)
    weights = two_class_weights(task_nodes.size, heavy_fraction=0.25,
                                heavy=1.0, light=0.1)
    speeds = np.ones(num_nodes, dtype=np.float64)
    scalar = WeightedState(task_nodes.copy(), weights, speeds)
    batch = BatchWeightedState.from_states(
        [
            WeightedState(task_nodes.copy(), weights, speeds),
            WeightedState(task_nodes.copy(), weights, speeds),
        ]
    )
    return scalar, batch


class TestDeterministicEventSemantics:
    """Unit-level scalar/batch agreement for each compiled event."""

    graph = complete_graph(4)

    def test_trace_arrival_places_exact_targets(self):
        scalar, batch = uniform_pair([1, 0, 2, 0])
        event = TraceArrival(targets=(0, 0, 3))
        outcome = event.apply(scalar, self.graph, None)
        assert outcome.tasks_added == 3
        np.testing.assert_array_equal(scalar.counts, [3, 0, 2, 1])
        batch_outcome = event.apply_batch(batch, self.graph, None)
        np.testing.assert_array_equal(batch_outcome.tasks_added, [3, 3])
        np.testing.assert_array_equal(
            batch.counts, np.stack([scalar.counts, scalar.counts])
        )

    def test_trace_departure_scan_is_deterministic(self):
        scalar, batch = uniform_pair([3, 0, 2, 1])
        event = TraceDeparture(count=4)
        outcome = event.apply(scalar, self.graph, None)
        assert outcome.tasks_removed == 4
        batch_outcome = event.apply_batch(batch, self.graph, None)
        np.testing.assert_array_equal(batch_outcome.tasks_removed, [4, 4])
        np.testing.assert_array_equal(
            batch.counts, np.stack([scalar.counts, scalar.counts])
        )
        assert scalar.num_tasks == 2

    def test_trace_relocation_floor_quota(self):
        scalar, batch = uniform_pair([4, 5, 0, 1])
        event = TraceRelocation(node=2, fraction=0.5)
        before = scalar.num_tasks
        event.apply(scalar, self.graph, None)
        assert scalar.num_tasks == before  # conserving
        # floor(0.5 * [4, 5, _, 1]) = [2, 2, _, 0] moved to node 2
        np.testing.assert_array_equal(scalar.counts, [2, 3, 4, 1])
        event.apply_batch(batch, self.graph, None)
        np.testing.assert_array_equal(
            batch.counts, np.stack([scalar.counts, scalar.counts])
        )

    def test_adversarial_targets_argmax_per_replica(self):
        scalar, _ = uniform_pair([1, 5, 2, 0])
        # Replica 1's hottest node differs from replica 0's.
        batch = BatchUniformState(
            np.array([[1, 5, 2, 0], [6, 1, 2, 0]], dtype=np.int64),
            np.ones(4, dtype=np.float64),
        )
        event = AdversarialArrival(count=2)
        event.apply(scalar, self.graph, None)
        np.testing.assert_array_equal(scalar.counts, [1, 7, 2, 0])
        event.apply_batch(batch, self.graph, None)
        np.testing.assert_array_equal(batch.counts[0], [1, 7, 2, 0])
        np.testing.assert_array_equal(batch.counts[1], [8, 1, 2, 0])

    def test_weighted_departure_takes_lowest_slots(self):
        scalar, batch = weighted_pair([0, 1, 1, 2], num_nodes=4)
        event = TraceDeparture(count=2)
        event.apply(scalar, self.graph, None)
        batch_outcome = event.apply_batch(batch, self.graph, None)
        np.testing.assert_array_equal(batch_outcome.tasks_removed, [2, 2])
        np.testing.assert_array_equal(scalar.num_tasks, 2)
        np.testing.assert_array_equal(batch.num_tasks, [2, 2])
        np.testing.assert_array_equal(
            batch.loads[0], batch.loads[1]
        )
        np.testing.assert_array_equal(scalar.loads, batch.loads[0])
