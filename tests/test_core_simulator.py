"""Tests for repro.core.simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import is_nash
from repro.core.protocols import SelfishUniformProtocol
from repro.core.simulator import Simulator, run_protocol
from repro.core.stopping import NashStop, NeverStop, PotentialThresholdStop
from repro.core.trace import RecordingOptions
from repro.graphs.generators import cycle_graph, torus_graph
from repro.model.state import UniformState


class TestSimulatorRun:
    def test_converges_to_nash(self, ring8):
        state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
        simulator = Simulator(ring8, SelfishUniformProtocol(), seed=1)
        result = simulator.run(state, stopping=NashStop(), max_rounds=20_000)
        assert result.converged
        assert is_nash(state, ring8)
        assert result.stop_round == result.rounds_executed
        assert "nash" in result.stop_reason

    def test_initial_state_already_converged(self, ring8):
        state = UniformState(np.full(8, 10), np.ones(8))
        result = run_protocol(
            ring8, SelfishUniformProtocol(), state, stopping=NashStop(), seed=0
        )
        assert result.converged
        assert result.stop_round == 0
        assert result.rounds_executed == 0

    def test_budget_exhaustion(self, ring8):
        state = UniformState(np.array([800, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
        result = run_protocol(
            ring8,
            SelfishUniformProtocol(),
            state,
            stopping=NashStop(),
            max_rounds=2,
            seed=0,
        )
        assert not result.converged
        assert result.stop_round is None
        assert result.rounds_executed == 2
        assert "budget" in result.stop_reason

    def test_no_stopping_runs_full_horizon(self, ring8):
        state = UniformState(np.full(8, 10), np.ones(8))
        result = run_protocol(
            ring8, SelfishUniformProtocol(), state, max_rounds=7, seed=0
        )
        assert result.rounds_executed == 7
        assert not result.converged

    def test_deterministic_given_seed(self, ring8):
        def run_once():
            state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
            return run_protocol(
                ring8,
                SelfishUniformProtocol(),
                state,
                stopping=NashStop(),
                max_rounds=20_000,
                seed=77,
            ).stop_round

        assert run_once() == run_once()

    def test_recording_trace(self, ring8):
        state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
        result = run_protocol(
            ring8,
            SelfishUniformProtocol(),
            state,
            stopping=NashStop(),
            max_rounds=20_000,
            seed=1,
            record=True,
        )
        trace = result.trace
        assert trace is not None
        assert len(trace) == result.rounds_executed + 1
        assert trace.psi0 is not None
        assert trace.psi0[-1] <= trace.psi0[0]

    def test_recording_options_every(self, ring8):
        state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
        result = run_protocol(
            ring8,
            SelfishUniformProtocol(),
            state,
            max_rounds=10,
            seed=1,
            recording=RecordingOptions(every=5),
        )
        np.testing.assert_array_equal(result.trace.rounds, [0, 5, 10])

    def test_check_every(self, torus9):
        state = UniformState(np.array([90] + [0] * 8), np.ones(9))
        result = run_protocol(
            torus9,
            SelfishUniformProtocol(),
            state,
            stopping=NashStop(),
            max_rounds=50_000,
            seed=2,
            check_every=10,
        )
        assert result.converged
        assert result.stop_round % 10 == 0

    def test_never_stop(self, ring8):
        state = UniformState(np.full(8, 10), np.ones(8))
        result = run_protocol(
            ring8,
            SelfishUniformProtocol(),
            state,
            stopping=NeverStop(),
            max_rounds=5,
            seed=0,
        )
        assert not result.converged
        assert result.rounds_executed == 5

    def test_potential_threshold_stop(self, torus9):
        state = UniformState(np.array([900] + [0] * 8), np.ones(9))
        result = run_protocol(
            torus9,
            SelfishUniformProtocol(),
            state,
            stopping=PotentialThresholdStop(1000.0, "psi0"),
            max_rounds=10_000,
            seed=3,
        )
        assert result.converged
        from repro.core.potentials import psi0_potential

        assert psi0_potential(state) <= 1000.0

    def test_zero_max_rounds(self, ring8):
        state = UniformState(np.array([80, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
        result = run_protocol(
            ring8, SelfishUniformProtocol(), state, stopping=NashStop(), max_rounds=0
        )
        assert not result.converged
        assert result.rounds_executed == 0

    def test_properties_exposed(self, ring8):
        protocol = SelfishUniformProtocol()
        simulator = Simulator(ring8, protocol, seed=0)
        assert simulator.graph is ring8
        assert simulator.protocol is protocol
