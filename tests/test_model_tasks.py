"""Tests for repro.model.tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.tasks import (
    UniformTaskSystem,
    WeightedTaskSystem,
    random_weights,
    two_class_weights,
    uniform_weights,
)


class TestUniformTaskSystem:
    def test_counts(self):
        system = UniformTaskSystem(10)
        assert system.num_tasks == 10
        assert system.total_weight == 10.0
        assert system.is_uniform

    def test_empty(self):
        system = UniformTaskSystem(0)
        assert system.total_weight == 0.0

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            UniformTaskSystem(-1)


class TestWeightedTaskSystem:
    def test_totals(self):
        system = WeightedTaskSystem([0.5, 1.0, 0.25])
        assert system.num_tasks == 3
        assert system.total_weight == pytest.approx(1.75)
        assert system.max_weight == 1.0
        assert system.min_weight == 0.25

    def test_uniform_detection(self):
        assert WeightedTaskSystem([1.0, 1.0]).is_uniform
        assert not WeightedTaskSystem([1.0, 0.5]).is_uniform

    def test_weight_range_enforced(self):
        with pytest.raises(ModelError):
            WeightedTaskSystem([0.0])
        with pytest.raises(ModelError):
            WeightedTaskSystem([1.1])
        with pytest.raises(ModelError):
            WeightedTaskSystem([-0.5])

    def test_weights_immutable(self):
        system = WeightedTaskSystem([0.5, 0.5])
        with pytest.raises(ValueError):
            system.weights[0] = 0.9

    def test_empty_max_weight_raises(self):
        system = WeightedTaskSystem([])
        with pytest.raises(ModelError):
            _ = system.max_weight


class TestWeightGenerators:
    def test_uniform_weights(self):
        np.testing.assert_array_equal(uniform_weights(3), np.ones(3))

    def test_random_weights_range(self):
        weights = random_weights(200, 0.2, 0.8, seed=1)
        assert weights.min() >= 0.2
        assert weights.max() <= 0.8

    def test_random_weights_deterministic(self):
        np.testing.assert_array_equal(
            random_weights(10, seed=3), random_weights(10, seed=3)
        )

    def test_random_weights_bad_range(self):
        with pytest.raises(ModelError):
            random_weights(5, 0.9, 0.1)
        with pytest.raises(ModelError):
            random_weights(5, 0.0, 1.0)

    def test_two_class_weights(self):
        weights = two_class_weights(10, 0.3, heavy=1.0, light=0.2)
        assert np.count_nonzero(weights == 1.0) == 3
        assert np.count_nonzero(weights == 0.2) == 7

    def test_two_class_validation(self):
        with pytest.raises(ModelError):
            two_class_weights(10, 1.5)
        with pytest.raises(ModelError):
            two_class_weights(10, 0.5, heavy=0.1, light=0.5)
