"""Tests for repro.core.drops: exact conditional expectations.

The closed forms are validated against brute-force Monte Carlo and
against the drop lemmas of the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drops import (
    expected_potential_drop,
    expected_psi0_after_round,
    expected_psi1_after_round,
)
from repro.core.flows import default_alpha
from repro.core.potentials import psi0_potential, psi1_potential
from repro.core.protocols import SelfishUniformProtocol, SelfishWeightedProtocol
from repro.errors import ValidationError
from repro.graphs.generators import cycle_graph, grid_graph, path_graph
from repro.model.state import UniformState, WeightedState
from repro.spectral.eigen import algebraic_connectivity
from repro.theory.lemmas import lemma_310_drop_lower_bound


class TestUniformExactExpectation:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_monte_carlo(self, seed):
        rng = np.random.default_rng(seed)
        graph = grid_graph(3)
        counts = rng.integers(0, 60, size=9)
        speeds = rng.uniform(1.0, 3.0, size=9)
        state = UniformState(counts, speeds)
        exact = expected_psi0_after_round(state, graph)
        protocol = SelfishUniformProtocol()
        samples = []
        for _ in range(4000):
            trial = state.copy()
            protocol.execute_round(trial, graph, rng)
            samples.append(psi0_potential(trial))
        mean = float(np.mean(samples))
        standard_error = float(np.std(samples)) / np.sqrt(len(samples))
        assert abs(mean - exact) < 4.5 * standard_error + 1e-9

    def test_nash_state_no_change(self, ring8):
        state = UniformState(np.full(8, 10), np.ones(8))
        assert expected_psi0_after_round(state, ring8) == pytest.approx(
            psi0_potential(state)
        )
        assert expected_potential_drop(state, ring8, r=0) == pytest.approx(0.0)

    def test_psi1_matches_monte_carlo(self):
        rng = np.random.default_rng(3)
        graph = cycle_graph(6)
        counts = rng.integers(0, 40, size=6)
        speeds = np.array([1.0, 2.0, 1.0, 2.0, 1.0, 1.0])
        state = UniformState(counts, speeds)
        alpha = default_alpha(2.0)
        exact = expected_psi1_after_round(state, graph, alpha=alpha)
        protocol = SelfishUniformProtocol(alpha=alpha)
        samples = []
        for _ in range(4000):
            trial = state.copy()
            protocol.execute_round(trial, graph, rng)
            samples.append(psi1_potential(trial))
        mean = float(np.mean(samples))
        standard_error = float(np.std(samples)) / np.sqrt(len(samples))
        assert abs(mean - exact) < 4.5 * standard_error + 1e-9


class TestWeightedExactExpectation:
    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(5)
        graph = path_graph(4)
        m = 100
        weights = rng.uniform(0.1, 1.0, size=m)
        locations = rng.integers(0, 4, size=m)
        speeds = np.array([1.0, 2.0, 1.0, 1.5])
        state = WeightedState(locations, weights, speeds)
        exact = expected_psi0_after_round(state, graph)
        protocol = SelfishWeightedProtocol(rule="flow")
        samples = []
        for _ in range(4000):
            trial = state.copy()
            protocol.execute_round(trial, graph, rng)
            samples.append(psi0_potential(trial))
        mean = float(np.mean(samples))
        standard_error = float(np.std(samples)) / np.sqrt(len(samples))
        assert abs(mean - exact) < 4.5 * standard_error + 1e-9


class TestDropLemmaConsistency:
    def test_lemma_310_on_random_states(self, rng):
        """E[drop Psi_0] >= the spectral lower bound (Lemma 3.10)."""
        graph = grid_graph(3)
        lambda2 = algebraic_connectivity(graph)
        for _ in range(25):
            counts = rng.integers(0, 80, size=9)
            speeds = rng.uniform(1.0, 2.0, size=9)
            state = UniformState(counts, speeds)
            drop = expected_potential_drop(state, graph, r=0)
            bound = lemma_310_drop_lower_bound(
                9, graph.max_degree, lambda2, float(speeds.max()), psi0_potential(state)
            )
            assert drop >= bound - 1e-9

    def test_drop_positive_far_from_equilibrium(self, ring8):
        state = UniformState(np.array([800, 0, 0, 0, 0, 0, 0, 0]), np.ones(8))
        assert expected_potential_drop(state, ring8, r=0) > 0

    def test_invalid_r(self, ring8):
        state = UniformState(np.full(8, 5), np.ones(8))
        with pytest.raises(ValidationError):
            expected_potential_drop(state, ring8, r=2)
