"""Tests for repro.analysis.fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fitting import (
    PowerLawFit,
    exponent_consistent,
    fit_exponential_decay,
    fit_power_law,
)
from repro.errors import ValidationError


class TestFitPowerLaw:
    def test_exact_power_law(self):
        x = np.array([2.0, 4.0, 8.0, 16.0])
        y = 3.0 * x**2
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(2.0, abs=1e-10)
        assert fit.prefactor == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.num_points == 4

    def test_constant_data(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [5.0, 5.0, 5.0])
        assert fit.exponent == pytest.approx(0.0, abs=1e-10)

    def test_noisy_fit_reasonable(self, rng):
        x = np.linspace(4, 64, 12)
        y = 2.0 * x**1.5 * rng.uniform(0.9, 1.1, size=12)
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.5, abs=0.15)
        assert fit.r_squared > 0.95

    def test_predict(self):
        fit = PowerLawFit(exponent=2.0, prefactor=3.0, r_squared=1.0, num_points=4)
        assert fit.predict(10.0) == pytest.approx(300.0)

    def test_needs_two_points(self):
        with pytest.raises(ValidationError):
            fit_power_law([2.0], [4.0])

    def test_needs_positive_values(self):
        with pytest.raises(ValidationError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])
        with pytest.raises(ValidationError):
            fit_power_law([-1.0, 2.0], [1.0, 1.0])

    def test_needs_distinct_x(self):
        with pytest.raises(ValidationError):
            fit_power_law([2.0, 2.0], [1.0, 2.0])


class TestFitExponentialDecay:
    def test_exact_decay(self):
        t = np.arange(30, dtype=float)
        y = 100.0 * 0.9**t
        assert fit_exponential_decay(t, y) == pytest.approx(0.9, rel=1e-9)

    def test_growth_detected(self):
        t = np.arange(10, dtype=float)
        y = 1.1**t
        assert fit_exponential_decay(t, y) > 1.0

    def test_ignores_zero_samples(self):
        t = np.arange(10, dtype=float)
        y = 100.0 * 0.5**t
        y[-1] = 0.0
        assert fit_exponential_decay(t, y) == pytest.approx(0.5, rel=1e-6)

    def test_needs_two_positive(self):
        with pytest.raises(ValidationError):
            fit_exponential_decay([0.0, 1.0], [0.0, 0.0])


class TestExponentConsistent:
    def test_within(self):
        fit = PowerLawFit(2.1, 1.0, 1.0, 5)
        assert exponent_consistent(fit, 2.0, slack=0.2)

    def test_outside(self):
        fit = PowerLawFit(2.7, 1.0, 1.0, 5)
        assert not exponent_consistent(fit, 2.0, slack=0.2)

    def test_below_is_fine(self):
        """Upper bounds allow slower growth than predicted."""
        fit = PowerLawFit(0.5, 1.0, 1.0, 5)
        assert exponent_consistent(fit, 3.0, slack=0.0)

    def test_negative_slack_rejected(self):
        fit = PowerLawFit(1.0, 1.0, 1.0, 5)
        with pytest.raises(ValidationError):
            exponent_consistent(fit, 1.0, slack=-0.1)
