"""Tests for repro.spectral.laplacian."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SpeedError
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.spectral.laplacian import (
    generalized_laplacian,
    laplacian_matrix,
    laplacian_quadratic_form,
    laplacian_sparse,
    symmetrized_laplacian,
)


class TestLaplacianMatrix:
    def test_path3_explicit(self):
        lap = laplacian_matrix(path_graph(3))
        expected = np.array([[1, -1, 0], [-1, 2, -1], [0, -1, 1]], dtype=float)
        np.testing.assert_array_equal(lap, expected)

    def test_rows_sum_to_zero(self, small_graphs):
        for graph in small_graphs:
            lap = laplacian_matrix(graph)
            np.testing.assert_allclose(lap.sum(axis=0), 0.0, atol=1e-12)
            np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-12)

    def test_symmetric_psd(self, small_graphs):
        for graph in small_graphs:
            lap = laplacian_matrix(graph)
            np.testing.assert_array_equal(lap, lap.T)
            eigenvalues = np.linalg.eigvalsh(lap)
            assert eigenvalues.min() >= -1e-10

    def test_diagonal_is_degree(self, ring8):
        lap = laplacian_matrix(ring8)
        np.testing.assert_array_equal(np.diag(lap), ring8.degrees)

    def test_sparse_matches_dense(self, small_graphs):
        for graph in small_graphs:
            dense = laplacian_matrix(graph)
            sparse = laplacian_sparse(graph).toarray()
            np.testing.assert_allclose(sparse, dense)


class TestQuadraticForm:
    def test_matches_matrix_form(self, small_graphs, rng):
        for graph in small_graphs:
            x = rng.normal(size=graph.num_vertices)
            direct = laplacian_quadratic_form(graph, x)
            via_matrix = float(x @ laplacian_matrix(graph) @ x)
            assert direct == pytest.approx(via_matrix, rel=1e-10, abs=1e-10)

    def test_constant_vector_zero(self, ring8):
        assert laplacian_quadratic_form(ring8, np.ones(8)) == 0.0

    def test_edgeless_graph(self):
        from repro.graphs.graph import Graph

        graph = Graph(3, [])
        assert laplacian_quadratic_form(graph, [1.0, 2.0, 3.0]) == 0.0


class TestGeneralizedLaplacian:
    def test_speed_vector_in_kernel(self, small_graphs, rng):
        """Lemma 1.13 (1): L S^{-1} s = 0."""
        for graph in small_graphs:
            speeds = rng.uniform(1.0, 3.0, size=graph.num_vertices)
            gen = generalized_laplacian(graph, speeds)
            np.testing.assert_allclose(gen @ speeds, 0.0, atol=1e-9)

    def test_uniform_speeds_reduce_to_laplacian(self, ring8):
        gen = generalized_laplacian(ring8, np.ones(8))
        np.testing.assert_allclose(gen, laplacian_matrix(ring8))

    def test_not_symmetric_with_speeds(self, star6):
        speeds = np.array([1.0, 2.0, 1.0, 1.0, 1.0, 3.0])
        gen = generalized_laplacian(star6, speeds)
        assert not np.allclose(gen, gen.T)

    def test_non_positive_speed_rejected(self, ring8):
        with pytest.raises(SpeedError):
            generalized_laplacian(ring8, np.zeros(8))


class TestSymmetrizedLaplacian:
    def test_symmetric(self, torus9, rng):
        speeds = rng.uniform(1.0, 4.0, size=9)
        sym = symmetrized_laplacian(torus9, speeds)
        np.testing.assert_allclose(sym, sym.T)

    def test_same_spectrum_as_generalized(self, cube8, rng):
        """Lemma 1.13: S^{-1/2} L S^{-1/2} is similar to L S^{-1}."""
        speeds = rng.uniform(1.0, 4.0, size=8)
        sym_eigs = np.sort(np.linalg.eigvalsh(symmetrized_laplacian(cube8, speeds)))
        gen_eigs = np.sort(
            np.real(np.linalg.eigvals(generalized_laplacian(cube8, speeds)))
        )
        np.testing.assert_allclose(sym_eigs, gen_eigs, atol=1e-8)

    def test_psd(self, small_graphs, rng):
        for graph in small_graphs:
            speeds = rng.uniform(1.0, 2.0, size=graph.num_vertices)
            eigenvalues = np.linalg.eigvalsh(symmetrized_laplacian(graph, speeds))
            assert eigenvalues.min() >= -1e-10
