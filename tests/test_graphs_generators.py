"""Tests for repro.graphs.generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.generators import (
    barbell_graph,
    binary_tree_graph,
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    expander_graph,
    fat_tree_graph,
    from_edges,
    leaf_spine_graph,
    power_law_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.properties import diameter, is_connected, is_regular


class TestComplete:
    def test_edge_count(self):
        assert complete_graph(6).num_edges == 15

    def test_regular(self):
        graph = complete_graph(5)
        assert is_regular(graph)
        assert graph.max_degree == 4

    def test_diameter_one(self):
        assert diameter(complete_graph(4)) == 1

    def test_single_vertex(self):
        assert complete_graph(1).num_edges == 0


class TestPathAndCycle:
    def test_path_structure(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2
        assert diameter(graph) == 4

    def test_cycle_structure(self):
        graph = cycle_graph(6)
        assert graph.num_edges == 6
        assert is_regular(graph)
        assert diameter(graph) == 3

    def test_cycle_min_size(self):
        with pytest.raises(ValidationError):
            cycle_graph(2)


class TestGridAndTorus:
    def test_grid_counts(self):
        graph = grid_graph(3, 4)
        assert graph.num_vertices == 12
        # edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
        assert graph.num_edges == 17

    def test_grid_square_default(self):
        assert grid_graph(3).num_vertices == 9

    def test_grid_corner_degree(self):
        graph = grid_graph(3)
        assert graph.degree(0) == 2  # corner
        assert graph.degree(4) == 4  # center

    def test_torus_regular(self):
        graph = torus_graph(4)
        assert is_regular(graph)
        assert graph.max_degree == 4
        assert graph.num_edges == 2 * 16

    def test_torus_min_dimension(self):
        with pytest.raises(ValidationError):
            torus_graph(2)

    def test_torus_rectangular(self):
        graph = torus_graph(3, 5)
        assert graph.num_vertices == 15
        assert is_regular(graph)

    def test_grid_diameter(self):
        assert diameter(grid_graph(4)) == 6  # 2 * (k - 1)


class TestHypercube:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_structure(self, d):
        graph = hypercube_graph(d)
        assert graph.num_vertices == 2**d
        assert graph.num_edges == d * 2 ** (d - 1)
        assert is_regular(graph)
        assert graph.max_degree == d
        assert diameter(graph) == d

    def test_too_large_rejected(self):
        with pytest.raises(ValidationError):
            hypercube_graph(30)


class TestStarAndBipartite:
    def test_star(self):
        graph = star_graph(7)
        assert graph.num_edges == 6
        assert graph.degree(0) == 6
        assert graph.degree(1) == 1

    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(2, 3)
        assert graph.num_vertices == 5
        assert graph.num_edges == 6
        assert graph.degree(0) == 3
        assert graph.degree(2) == 2


class TestBinaryTree:
    def test_heap_structure(self):
        graph = binary_tree_graph(7)
        assert graph.num_edges == 6
        assert graph.degree(0) == 2
        assert graph.degree(1) == 3
        assert graph.degree(6) == 1

    def test_connected(self):
        assert is_connected(binary_tree_graph(20))


class TestRandomRegular:
    def test_regularity(self):
        graph = random_regular_graph(12, 3, seed=1)
        assert is_regular(graph)
        assert graph.max_degree == 3

    def test_odd_product_rejected(self):
        with pytest.raises(ValidationError):
            random_regular_graph(5, 3)

    def test_degree_too_large(self):
        with pytest.raises(ValidationError):
            random_regular_graph(4, 4)

    def test_deterministic_with_seed(self):
        a = random_regular_graph(10, 3, seed=5)
        b = random_regular_graph(10, 3, seed=5)
        assert a == b


class TestErdosRenyi:
    def test_p_one_is_complete(self):
        graph = erdos_renyi_graph(6, 1.0, seed=0)
        assert graph.num_edges == 15

    def test_p_zero_is_empty(self):
        graph = erdos_renyi_graph(6, 0.0, seed=0)
        assert graph.num_edges == 0

    def test_edge_count_plausible(self):
        graph = erdos_renyi_graph(40, 0.5, seed=3)
        expected = 0.5 * 40 * 39 / 2
        assert abs(graph.num_edges - expected) < 120

    def test_invalid_p(self):
        with pytest.raises(ValidationError):
            erdos_renyi_graph(5, 1.5)


class TestBarbellAndLollipop:
    def test_barbell_no_bridge(self):
        graph = barbell_graph(4)
        assert graph.num_vertices == 8
        # two K4 (6 edges each) + 1 connecting edge
        assert graph.num_edges == 13
        assert is_connected(graph)

    def test_barbell_with_bridge(self):
        graph = barbell_graph(3, bridge_length=2)
        assert graph.num_vertices == 8
        assert is_connected(graph)

    def test_lollipop(self):
        graph = lollipop_graph(4, 3)
        assert graph.num_vertices == 7
        assert graph.num_edges == 6 + 3
        assert is_connected(graph)


class TestCirculant:
    def test_offsets_one_is_cycle(self):
        assert circulant_graph(8, [1]) == cycle_graph(8)

    def test_two_offsets_degree_four(self):
        graph = circulant_graph(10, [1, 2])
        assert is_regular(graph)
        assert graph.max_degree == 4

    def test_antipodal_offset(self):
        graph = circulant_graph(6, [3])
        assert graph.num_edges == 3  # antipodal matching

    def test_offset_too_large(self):
        with pytest.raises(ValidationError):
            circulant_graph(5, [5])

    def test_empty_offsets(self):
        with pytest.raises(ValidationError):
            circulant_graph(5, [])


class TestFromEdges:
    def test_roundtrip(self):
        graph = from_edges(4, [(0, 1), (2, 3)], name="pair")
        assert graph.name == "pair"
        assert graph.num_edges == 2


class TestFatTree:
    def test_size_and_arity(self):
        graph = fat_tree_graph(4)
        # (k/2)^2 cores + k pods of k switches
        assert graph.num_vertices == 4 + 4 * 4
        assert graph.max_degree == 4

    def test_layer_degrees(self):
        k = 4
        graph = fat_tree_graph(k)
        half = k // 2
        num_cores = half * half
        degrees = graph.degrees
        # cores connect to one agg per pod; aggs to half cores + half
        # edges; edge switches to the half aggs of their pod.
        np.testing.assert_array_equal(degrees[:num_cores], k)
        for pod in range(k):
            base = num_cores + pod * k
            np.testing.assert_array_equal(degrees[base : base + half], k)
            np.testing.assert_array_equal(degrees[base + half : base + k], half)

    def test_diameter_four(self):
        assert diameter(fat_tree_graph(4)) == 4

    def test_connected_across_arities(self):
        for k in (2, 4, 6):
            assert is_connected(fat_tree_graph(k))

    def test_odd_arity_rejected(self):
        with pytest.raises(ValidationError):
            fat_tree_graph(3)


class TestLeafSpine:
    def test_is_complete_bipartite(self):
        graph = leaf_spine_graph(4, 12)
        assert graph.num_vertices == 16
        assert graph.num_edges == 4 * 12
        np.testing.assert_array_equal(graph.degrees[:4], 12)  # spines
        np.testing.assert_array_equal(graph.degrees[4:], 4)  # leaves
        assert diameter(graph) == 2

    def test_hosts_hang_off_leaves(self):
        graph = leaf_spine_graph(2, 3, hosts_per_leaf=2)
        assert graph.num_vertices == 2 + 3 + 6
        np.testing.assert_array_equal(graph.degrees[5:], 1)


class TestExpander:
    def test_regular_with_gap_floor(self):
        from repro.spectral.eigen import algebraic_connectivity

        graph = expander_graph(20, degree=4, seed=0)
        assert is_regular(graph)
        assert graph.max_degree == 4
        # Ramanujan-style floor: 0.9 * (d - 2 sqrt(d - 1))
        floor = 0.9 * (4 - 2 * np.sqrt(3.0))
        assert algebraic_connectivity(graph) >= floor

    def test_deterministic_per_seed(self):
        assert expander_graph(20, seed=5) == expander_graph(20, seed=5)
        assert expander_graph(20, seed=5) != expander_graph(20, seed=6)


class TestPowerLaw:
    def test_connected_and_sized(self):
        graph = power_law_graph(40, seed=3)
        assert graph.num_vertices == 40
        assert is_connected(graph)

    def test_heavy_tail(self):
        """Hub degrees dominate the median degree by a wide margin."""
        graph = power_law_graph(120, exponent=2.5, seed=3)
        degrees = np.sort(graph.degrees)
        assert degrees[-1] >= 3 * np.median(degrees)

    def test_deterministic_per_seed(self):
        assert power_law_graph(40, seed=9) == power_law_graph(40, seed=9)
