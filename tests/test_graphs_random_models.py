"""Tests for the Watts–Strogatz and random-geometric generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs.generators import (
    cycle_graph,
    random_geometric_graph,
    watts_strogatz_graph,
)
from repro.graphs.properties import diameter, is_connected
from repro.spectral.eigen import algebraic_connectivity


class TestWattsStrogatz:
    def test_p_zero_is_ring_lattice(self):
        graph = watts_strogatz_graph(10, 2, 0.0)
        assert graph == cycle_graph(10)

    def test_k4_lattice_edge_count(self):
        graph = watts_strogatz_graph(12, 4, 0.0)
        assert graph.num_edges == 24  # n * k / 2

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz_graph(30, 4, 0.5, seed=1)
        assert graph.num_edges == 60

    def test_deterministic(self):
        a = watts_strogatz_graph(20, 4, 0.3, seed=7)
        b = watts_strogatz_graph(20, 4, 0.3, seed=7)
        assert a == b

    def test_small_world_effect(self):
        """A little rewiring collapses the lattice diameter."""
        lattice = watts_strogatz_graph(64, 4, 0.0)
        rewired = watts_strogatz_graph(64, 4, 0.3, seed=2)
        if is_connected(rewired):
            assert diameter(rewired) < diameter(lattice)

    def test_rewiring_raises_lambda2(self):
        """Shortcuts increase algebraic connectivity (usually sharply)."""
        lattice = watts_strogatz_graph(48, 4, 0.0)
        rewired = watts_strogatz_graph(48, 4, 0.5, seed=3)
        if is_connected(rewired):
            assert algebraic_connectivity(rewired) > algebraic_connectivity(lattice)

    def test_odd_k_rejected(self):
        with pytest.raises(ValidationError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_k_too_large_rejected(self):
        with pytest.raises(ValidationError):
            watts_strogatz_graph(6, 6, 0.1)

    def test_bad_probability(self):
        with pytest.raises(ValidationError):
            watts_strogatz_graph(10, 2, 1.5)


class TestRandomGeometric:
    def test_radius_sqrt2_is_complete(self):
        graph = random_geometric_graph(10, np.sqrt(2.0), seed=0)
        assert graph.num_edges == 45

    def test_tiny_radius_is_sparse(self):
        graph = random_geometric_graph(40, 0.01, seed=1)
        assert graph.num_edges < 20

    def test_deterministic(self):
        a = random_geometric_graph(25, 0.3, seed=4)
        b = random_geometric_graph(25, 0.3, seed=4)
        assert a == b

    def test_edge_count_grows_with_radius(self):
        small = random_geometric_graph(50, 0.15, seed=5)
        large = random_geometric_graph(50, 0.5, seed=5)
        assert large.num_edges > small.num_edges

    def test_radius_validated(self):
        with pytest.raises(ValidationError):
            random_geometric_graph(10, 0.0)
        with pytest.raises(ValidationError):
            random_geometric_graph(10, 2.0)

    def test_protocol_runs_on_geometric_graph(self):
        """End-to-end: the protocol balances on a spatial topology."""
        import repro

        graph = random_geometric_graph(30, 0.45, seed=6)
        if not is_connected(graph):
            pytest.skip("sampled graph disconnected")
        state = repro.UniformState(
            repro.all_on_one_placement(30, 600), repro.uniform_speeds(30)
        )
        result = repro.run_protocol(
            graph,
            repro.SelfishUniformProtocol(),
            state,
            stopping=repro.NashStop(),
            max_rounds=100_000,
            seed=7,
        )
        assert result.converged
